package shj

import (
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

var (
	scA = stream.MustSchema("A",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "p", Kind: value.KindString},
	)
	scB = stream.MustSchema("B",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "q", Kind: value.KindString},
	)
)

func TestNewValidation(t *testing.T) {
	sink := &op.Collector{}
	if _, err := New(nil, scB, 0, 0, sink); err == nil {
		t.Error("nil schema should error")
	}
	if _, err := New(scA, scB, 0, 0, nil); err == nil {
		t.Error("nil emitter should error")
	}
	if _, err := New(scA, scB, 7, 0, sink); err == nil {
		t.Error("attr range should error")
	}
	if _, err := New(scA, scB, 0, 1, sink); err == nil {
		t.Error("kind mismatch should error")
	}
}

func TestJoinAndOrientation(t *testing.T) {
	sink := &op.Collector{}
	j, err := New(scA, scB, 0, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	a := stream.MustTuple(scA, 1, value.Int(5), value.Str("a"))
	b := stream.MustTuple(scB, 2, value.Int(5), value.Str("b"))
	if err := j.Process(0, stream.TupleItem(a), 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Process(1, stream.TupleItem(b), 2); err != nil {
		t.Fatal(err)
	}
	// Either arrival order produces A-first results.
	b2 := stream.MustTuple(scB, 3, value.Int(6), value.Str("b2"))
	a2 := stream.MustTuple(scA, 4, value.Int(6), value.Str("a2"))
	j.Process(1, stream.TupleItem(b2), 3)
	j.Process(0, stream.TupleItem(a2), 4)
	got := sink.Tuples()
	if len(got) != 2 {
		t.Fatalf("results = %d", len(got))
	}
	for _, r := range got {
		if r.Values[1].Kind() != value.KindString || r.Values[3].Kind() != value.KindString {
			t.Fatalf("bad widths: %v", r)
		}
		if r.Values[1].StrVal()[0] != 'a' || r.Values[3].StrVal()[0] != 'b' {
			t.Errorf("orientation wrong: %v", r)
		}
	}
	if j.StateTuples() != 4 {
		t.Errorf("state = %d", j.StateTuples())
	}
}

func TestPunctuationsIgnored(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(scA, scB, 0, 0, sink)
	p := stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(1))), 1)
	if err := j.Process(0, p, 1); err != nil {
		t.Fatal(err)
	}
	if len(sink.Items) != 0 {
		t.Error("punctuation leaked through")
	}
}

func TestProtocol(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(scA, scB, 0, 0, sink)
	if err := j.Finish(0); err == nil {
		t.Error("Finish before EOS should error")
	}
	if err := j.Process(3, stream.EOSItem(1), 1); err == nil {
		t.Error("bad port should error")
	}
	j.Process(0, stream.EOSItem(1), 1)
	if err := j.Process(0, stream.EOSItem(2), 2); err == nil {
		t.Error("dup EOS should error")
	}
	j.Process(1, stream.EOSItem(3), 3)
	if err := j.Finish(4); err != nil {
		t.Fatal(err)
	}
	if last := sink.Items[len(sink.Items)-1]; last.Kind != stream.KindEOS {
		t.Error("EOS not forwarded")
	}
	if err := j.Finish(5); err == nil {
		t.Error("double Finish should error")
	}
	if err := j.Process(0, p(t), 6); err == nil {
		t.Error("Process after Finish should error")
	}
	if did, _ := j.OnIdle(7); did {
		t.Error("SHJ has no idle work")
	}
}

func p(t *testing.T) stream.Item {
	t.Helper()
	return stream.TupleItem(stream.MustTuple(scA, 6, value.Int(1), value.Str("x")))
}

func TestMetadata(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(scA, scB, 0, 0, sink)
	if j.Name() != "shj" || j.NumPorts() != 2 || j.OutSchema().Width() != 4 {
		t.Error("metadata wrong")
	}
}
