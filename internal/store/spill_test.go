package store

import (
	"bytes"
	"os"
	"testing"
)

// spillSuite runs the SpillStore contract against any implementation.
func spillSuite(t *testing.T, mk func(t *testing.T) SpillStore) {
	t.Run("empty partition reads empty", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		got, err := s.Read(3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("fresh partition has %d bytes", len(got))
		}
		if n, err := s.Size(3); err != nil || n != 0 {
			t.Errorf("Size = %d, %v", n, err)
		}
	})

	t.Run("append accumulates", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		if err := s.Append(0, []byte("hello ")); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(0, []byte("world")); err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("hello world")) {
			t.Errorf("Read = %q", got)
		}
		if n, _ := s.Size(0); n != 11 {
			t.Errorf("Size = %d", n)
		}
	})

	t.Run("partitions are independent", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		s.Append(1, []byte("one"))
		s.Append(2, []byte("two"))
		got1, _ := s.Read(1)
		got2, _ := s.Read(2)
		if string(got1) != "one" || string(got2) != "two" {
			t.Errorf("partition mixup: %q %q", got1, got2)
		}
	})

	t.Run("truncate clears one partition", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		s.Append(1, []byte("one"))
		s.Append(2, []byte("two"))
		if err := s.Truncate(1); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Read(1); len(got) != 0 {
			t.Errorf("partition 1 not empty after truncate: %q", got)
		}
		if got, _ := s.Read(2); string(got) != "two" {
			t.Errorf("truncate leaked to partition 2: %q", got)
		}
		// Append after truncate works.
		s.Append(1, []byte("new"))
		if got, _ := s.Read(1); string(got) != "new" {
			t.Errorf("append after truncate: %q", got)
		}
	})

	t.Run("stats count traffic", func(t *testing.T) {
		s := mk(t)
		defer s.Close()
		s.Append(0, make([]byte, 100))
		s.Append(0, make([]byte, 50))
		s.Read(0)
		st, err := s.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.WriteOps != 2 || st.BytesWritten != 150 {
			t.Errorf("write stats = %+v", st)
		}
		if st.ReadOps != 1 || st.BytesRead != 150 {
			t.Errorf("read stats = %+v", st)
		}
	})

	t.Run("closed store errors", func(t *testing.T) {
		// Every method must answer "closed" uniformly — including Size
		// and Stats, which historically leaked zero values instead.
		s := mk(t)
		s.Append(0, []byte("x"))
		s.Close()
		if err := s.Append(0, []byte("x")); err == nil {
			t.Error("Append after Close should error")
		}
		if _, err := s.Read(0); err == nil {
			t.Error("Read after Close should error")
		}
		if err := s.Truncate(0); err == nil {
			t.Error("Truncate after Close should error")
		}
		if _, err := s.Size(0); err == nil {
			t.Error("Size after Close should error")
		}
		if _, err := s.Stats(); err == nil {
			t.Error("Stats after Close should error")
		}
	})
}

func TestMemSpill(t *testing.T) {
	spillSuite(t, func(t *testing.T) SpillStore { return NewMemSpill() })
}

func TestFileSpill(t *testing.T) {
	spillSuite(t, func(t *testing.T) SpillStore {
		fs, err := NewFileSpill(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestFileSpillCloseRemovesDir(t *testing.T) {
	fs, err := NewFileSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs.Append(0, []byte("data"))
	dir := fs.Dir()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("spill dir missing before close: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("spill dir still exists after close: %v", err)
	}
	// Double close is fine.
	if err := fs.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestMemSpillReadReturnsCopy(t *testing.T) {
	s := NewMemSpill()
	defer s.Close()
	s.Append(0, []byte("abc"))
	got, _ := s.Read(0)
	got[0] = 'X'
	again, _ := s.Read(0)
	if string(again) != "abc" {
		t.Error("Read must return a copy")
	}
}
