package store

// occTracker maintains per-bucket memory occupancy incrementally so the
// spill-victim and skew queries need no O(nbuckets) scan. Buckets with
// equal non-zero counts form intrusive doubly-linked lists indexed by
// count (heads); max tracks the largest occupancy and walks down lazily
// when its list drains — each downward step is paid for by an earlier
// increment, so updates are amortised O(1).
type occTracker struct {
	count      []int
	prev, next []int
	heads      map[int]int
	max        int
}

func newOccTracker(nbuckets int) occTracker {
	o := occTracker{
		count: make([]int, nbuckets),
		prev:  make([]int, nbuckets),
		next:  make([]int, nbuckets),
		heads: make(map[int]int),
	}
	for i := range o.prev {
		o.prev[i], o.next[i] = -1, -1
	}
	return o
}

// set moves bucket b to occupancy n.
func (o *occTracker) set(b, n int) {
	old := o.count[b]
	if old == n {
		return
	}
	if old > 0 {
		o.unlinkFrom(b, old)
	}
	o.count[b] = n
	if n > 0 {
		// Push at head; list order within one count is irrelevant
		// (largest() resolves ties by bucket index).
		if h, ok := o.heads[n]; ok {
			o.prev[h] = b
			o.next[b] = h
		} else {
			o.next[b] = -1
		}
		o.prev[b] = -1
		o.heads[n] = b
	}
	if n > o.max {
		o.max = n
	}
	for o.max > 0 {
		if _, ok := o.heads[o.max]; ok {
			break
		}
		o.max--
	}
}

// add shifts bucket b's occupancy by d.
func (o *occTracker) add(b, d int) { o.set(b, o.count[b]+d) }

func (o *occTracker) unlinkFrom(b, c int) {
	p, n := o.prev[b], o.next[b]
	if p >= 0 {
		o.next[p] = n
	} else if n >= 0 {
		o.heads[c] = n
	} else {
		delete(o.heads, c)
	}
	if n >= 0 {
		o.prev[n] = p
	}
	o.prev[b], o.next[b] = -1, -1
}

// largest returns the lowest-indexed bucket among those with maximal
// non-zero occupancy, or -1 when every bucket is empty — exactly the
// victim the previous full scan picked. The walk touches only the tied
// buckets; outside pathological uniform states that is O(1).
func (o *occTracker) largest() int {
	if o.max == 0 {
		return -1
	}
	best := -1
	for b := o.heads[o.max]; b >= 0; b = o.next[b] {
		if best < 0 || b < best {
			best = b
		}
	}
	return best
}
