package store

import (
	"errors"
	"testing"
)

func TestFaultSpillFailsFromNthOp(t *testing.T) {
	boom := errors.New("boom")
	fs := NewFaultSpill(NewMemSpill(), FaultAny, 3, boom)
	defer fs.Close()
	if err := fs.Append(0, []byte("a")); err != nil { // op 1
		t.Fatal(err)
	}
	if _, err := fs.Read(0); err != nil { // op 2
		t.Fatal(err)
	}
	if err := fs.Append(0, []byte("b")); !errors.Is(err, boom) { // op 3: fail
		t.Fatalf("3rd op should fail, got %v", err)
	}
	// The fault is sticky: later ops fail too.
	if _, err := fs.Read(0); !errors.Is(err, boom) {
		t.Fatalf("post-fault read should fail, got %v", err)
	}
	if got := fs.Ops(); got != 4 {
		t.Errorf("Ops = %d, want 4", got)
	}
	// The inner store never saw the failed append.
	st, err := fs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WriteOps != 1 {
		t.Errorf("inner WriteOps = %d, want 1", st.WriteOps)
	}
}

func TestFaultSpillMaskSelectsOps(t *testing.T) {
	boom := errors.New("boom")
	fs := NewFaultSpill(NewMemSpill(), FaultRead, 1, boom)
	defer fs.Close()
	// Appends are not counted and never fail.
	for i := 0; i < 5; i++ {
		if err := fs.Append(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Read(0); !errors.Is(err, boom) {
		t.Fatalf("first read should fail, got %v", err)
	}
	if err := fs.Append(0, []byte("y")); err != nil {
		t.Errorf("append still works after read fault: %v", err)
	}
}

func TestFaultSpillZeroNeverFails(t *testing.T) {
	fs := NewFaultSpill(NewMemSpill(), FaultAny, 0, nil)
	defer fs.Close()
	for i := 0; i < 100; i++ {
		if err := fs.Append(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
}
