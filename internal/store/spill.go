// Package store implements the shared join state of PJoin and XJoin
// (paper §3.1): one State per input stream, each a hash table whose
// buckets have an in-memory portion and an on-disk portion, plus a purge
// buffer for tuples that are logically purged but may still owe left-over
// joins against disk-resident tuples of the opposite state.
//
// The on-disk portion is abstracted behind SpillStore with two
// implementations: a real temp-file store and an in-memory simulated disk
// with byte/op accounting (used by the cost-model simulator so
// experiments do not depend on host filesystem speed).
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// IOStats counts traffic through a SpillStore. The simulator charges
// virtual time for these; benches report them.
type IOStats struct {
	WriteOps     int64
	ReadOps      int64
	BytesWritten int64
	BytesRead    int64
	// ChunkReads counts sequential continuation reads by scan cursors:
	// the first chunk of a scan is a ReadOp (it pays the seek), every
	// later NextChunk/Tail read of the same cursor is a ChunkRead.
	ChunkReads int64
}

// ErrScanTruncated is returned by a ScanCursor whose partition was
// truncated after the cursor was opened: the snapshot it was reading no
// longer exists, so the scan must be abandoned and restarted.
var ErrScanTruncated = errors.New("store: partition truncated under scan")

// DefaultScanChunk is the chunk size a ScanCursor uses when NextChunk is
// given a non-positive budget.
const DefaultScanChunk = 64 << 10

// ScanCursor reads one partition incrementally. OpenScan fixes the scan's
// extent at the partition's size at open time, so a cursor is duplicate-
// safe under concurrent appends: bytes appended after the open are never
// returned by NextChunk, only by an explicit Tail call. Truncating the
// partition invalidates the cursor (ErrScanTruncated).
type ScanCursor interface {
	// NextChunk returns the next at-most-budget bytes of the snapshot
	// (DefaultScanChunk if budget <= 0), or io.EOF once the snapshot is
	// exhausted. The returned slice is owned by the caller.
	NextChunk(budget int) ([]byte, error)
	// Tail returns the bytes appended to the partition after the cursor
	// was opened (nil if none). The returned slice is owned by the caller.
	Tail() ([]byte, error)
	// Close releases the cursor. The cursor is unusable afterwards.
	Close() error
}

// SpillStore is the secondary-storage abstraction: an append-only byte
// log per partition (one partition per hash bucket per state).
type SpillStore interface {
	// Append appends data to the partition's log.
	Append(partition int, data []byte) error
	// Read returns the partition's entire contents. The returned slice
	// must not be retained across the next Append/Truncate.
	Read(partition int) ([]byte, error)
	// Truncate discards the partition's contents.
	Truncate(partition int) error
	// Size returns the partition's length in bytes.
	Size(partition int) (int64, error)
	// OpenScan returns a cursor over the partition's current contents
	// (see ScanCursor). Opening counts no I/O; the chunk reads do.
	OpenScan(partition int) (ScanCursor, error)
	// Stats returns cumulative I/O counters. Only successful operations
	// are counted: a failed read or write contributes nothing.
	Stats() (IOStats, error)
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// MemSpill is an in-memory SpillStore simulating a disk: contents live in
// byte slices but all traffic is counted, letting the simulator charge
// I/O costs deterministically.
type MemSpill struct {
	mu    sync.Mutex //pjoin:lockrank leaf
	parts map[int][]byte
	gens  map[int]uint64 // bumped on Truncate to invalidate open cursors
	stats IOStats
	done  bool
}

// NewMemSpill returns an empty simulated disk.
func NewMemSpill() *MemSpill {
	return &MemSpill{parts: make(map[int][]byte), gens: make(map[int]uint64)}
}

// Append implements SpillStore.
func (m *MemSpill) Append(partition int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return fmt.Errorf("store: append to closed MemSpill")
	}
	m.parts[partition] = append(m.parts[partition], data...)
	m.stats.WriteOps++
	m.stats.BytesWritten += int64(len(data))
	return nil
}

// Read implements SpillStore.
func (m *MemSpill) Read(partition int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return nil, fmt.Errorf("store: read from closed MemSpill")
	}
	p := m.parts[partition]
	m.stats.ReadOps++
	m.stats.BytesRead += int64(len(p))
	out := make([]byte, len(p))
	copy(out, p)
	return out, nil
}

// Truncate implements SpillStore.
func (m *MemSpill) Truncate(partition int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return fmt.Errorf("store: truncate on closed MemSpill")
	}
	delete(m.parts, partition)
	m.gens[partition]++
	return nil
}

// OpenScan implements SpillStore.
func (m *MemSpill) OpenScan(partition int) (ScanCursor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return nil, fmt.Errorf("store: scan on closed MemSpill")
	}
	return &memScan{
		m: m, part: partition,
		gen: m.gens[partition],
		end: int64(len(m.parts[partition])),
	}, nil
}

// memScan is MemSpill's ScanCursor. All reads happen under the store's
// mutex, so cursors are safe against concurrent appends and truncates.
type memScan struct {
	m       *MemSpill
	part    int
	gen     uint64
	off     int64
	end     int64 // snapshot extent, fixed at open
	started bool
	closed  bool
}

func (c *memScan) check() error {
	if c.closed {
		return fmt.Errorf("store: use of closed scan cursor")
	}
	if c.m.done {
		return fmt.Errorf("store: scan on closed MemSpill")
	}
	if c.m.gens[c.part] != c.gen {
		return ErrScanTruncated
	}
	return nil
}

// NextChunk implements ScanCursor.
func (c *memScan) NextChunk(budget int) ([]byte, error) {
	if budget <= 0 {
		budget = DefaultScanChunk
	}
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, err
	}
	if c.off >= c.end {
		return nil, io.EOF
	}
	n := c.end - c.off
	if int64(budget) < n {
		n = int64(budget)
	}
	out := make([]byte, n)
	copy(out, c.m.parts[c.part][c.off:c.off+n])
	c.off += n
	if c.started {
		c.m.stats.ChunkReads++
	} else {
		c.m.stats.ReadOps++
		c.started = true
	}
	c.m.stats.BytesRead += n
	return out, nil
}

// Tail implements ScanCursor.
func (c *memScan) Tail() ([]byte, error) {
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, err
	}
	p := c.m.parts[c.part]
	if int64(len(p)) <= c.end {
		return nil, nil
	}
	out := make([]byte, int64(len(p))-c.end)
	copy(out, p[c.end:])
	c.m.stats.ChunkReads++
	c.m.stats.BytesRead += int64(len(out))
	return out, nil
}

// Close implements ScanCursor.
func (c *memScan) Close() error {
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	c.closed = true
	return nil
}

// Size implements SpillStore.
func (m *MemSpill) Size(partition int) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return 0, fmt.Errorf("store: size on closed MemSpill")
	}
	return int64(len(m.parts[partition])), nil
}

// Stats implements SpillStore.
func (m *MemSpill) Stats() (IOStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return IOStats{}, fmt.Errorf("store: stats on closed MemSpill")
	}
	return m.stats, nil
}

// Close implements SpillStore.
func (m *MemSpill) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done = true
	m.parts = nil
	return nil
}

// FileSpill is a SpillStore backed by one file per partition under a
// directory, for running the operators against a real disk.
type FileSpill struct {
	mu    sync.Mutex //pjoin:lockrank leaf
	dir   string
	files map[int]*os.File
	gens  map[int]uint64 // bumped on Truncate to invalidate open cursors
	stats IOStats
	done  bool
}

// NewFileSpill creates a spill store in a fresh subdirectory of dir
// (os.TempDir() if dir is empty). Close removes the directory.
func NewFileSpill(dir string) (*FileSpill, error) {
	d, err := os.MkdirTemp(dir, "pjoin-spill-*")
	if err != nil {
		return nil, fmt.Errorf("store: create spill dir: %w", err)
	}
	return &FileSpill{dir: d, files: make(map[int]*os.File), gens: make(map[int]uint64)}, nil
}

// Dir returns the directory holding the partition files.
func (f *FileSpill) Dir() string { return f.dir }

func (f *FileSpill) partPath(partition int) string {
	return filepath.Join(f.dir, fmt.Sprintf("part-%06d.bin", partition))
}

func (f *FileSpill) file(partition int) (*os.File, error) {
	if fh, ok := f.files[partition]; ok {
		return fh, nil
	}
	fh, err := os.OpenFile(f.partPath(partition), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: open partition %d: %w", partition, err)
	}
	f.files[partition] = fh
	return fh, nil
}

// Append implements SpillStore.
func (f *FileSpill) Append(partition int, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return fmt.Errorf("store: append to closed FileSpill")
	}
	fh, err := f.file(partition)
	if err != nil {
		return err
	}
	if _, err := fh.Seek(0, 2); err != nil {
		return fmt.Errorf("store: seek partition %d: %w", partition, err)
	}
	n, err := fh.Write(data)
	if err != nil {
		return fmt.Errorf("store: write partition %d: %w", partition, err)
	}
	f.stats.WriteOps++
	f.stats.BytesWritten += int64(n)
	return nil
}

// Read implements SpillStore.
func (f *FileSpill) Read(partition int) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return nil, fmt.Errorf("store: read from closed FileSpill")
	}
	fh, err := f.file(partition)
	if err != nil {
		return nil, err
	}
	st, err := fh.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat partition %d: %w", partition, err)
	}
	buf, err := readAt(fh, st.Size())
	if err != nil {
		return nil, fmt.Errorf("store: read partition %d: %w", partition, err)
	}
	f.stats.ReadOps++
	f.stats.BytesRead += int64(len(buf))
	return buf, nil
}

// readAt reads exactly size bytes from offset 0. The io.ReaderAt contract
// allows a read that ends exactly at end-of-input to return either nil or
// io.EOF, so a full read with io.EOF is success; every other error is an
// error, including on a zero-length input.
func readAt(r io.ReaderAt, size int64) ([]byte, error) {
	buf := make([]byte, size)
	n, err := r.ReadAt(buf, 0)
	if errors.Is(err, io.EOF) && int64(n) == size {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// Truncate implements SpillStore. The partition's file is closed and
// removed (not merely truncated): a discarded partition must not keep an
// open descriptor pinning a deleted inode. A later Append re-creates the
// file lazily.
func (f *FileSpill) Truncate(partition int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return fmt.Errorf("store: truncate on closed FileSpill")
	}
	f.gens[partition]++
	fh, ok := f.files[partition]
	if !ok {
		return nil
	}
	delete(f.files, partition)
	closeErr := fh.Close()
	if err := os.Remove(f.partPath(partition)); err != nil {
		return fmt.Errorf("store: remove partition %d: %w", partition, err)
	}
	if closeErr != nil {
		return fmt.Errorf("store: close partition %d: %w", partition, closeErr)
	}
	return nil
}

// Size implements SpillStore.
func (f *FileSpill) Size(partition int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return 0, fmt.Errorf("store: size on closed FileSpill")
	}
	fh, ok := f.files[partition]
	if !ok {
		return 0, nil
	}
	st, err := fh.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: stat partition %d: %w", partition, err)
	}
	return st.Size(), nil
}

// OpenScan implements SpillStore.
func (f *FileSpill) OpenScan(partition int) (ScanCursor, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return nil, fmt.Errorf("store: scan on closed FileSpill")
	}
	var end int64
	if fh, ok := f.files[partition]; ok {
		st, err := fh.Stat()
		if err != nil {
			return nil, fmt.Errorf("store: stat partition %d: %w", partition, err)
		}
		end = st.Size()
	}
	return &fileScan{f: f, part: partition, gen: f.gens[partition], end: end}, nil
}

// fileScan is FileSpill's ScanCursor, reading with ReadAt at a tracked
// offset under the store's mutex.
type fileScan struct {
	f       *FileSpill
	part    int
	gen     uint64
	off     int64
	end     int64 // snapshot extent, fixed at open
	started bool
	closed  bool
}

func (c *fileScan) check() error {
	if c.closed {
		return fmt.Errorf("store: use of closed scan cursor")
	}
	if c.f.done {
		return fmt.Errorf("store: scan on closed FileSpill")
	}
	if c.f.gens[c.part] != c.gen {
		return ErrScanTruncated
	}
	return nil
}

// readRange reads [off, off+n) of the partition, tolerating io.EOF on a
// read that ends exactly at end-of-file (same contract as readAt).
func (c *fileScan) readRange(off, n int64) ([]byte, error) {
	fh, ok := c.f.files[c.part]
	if !ok {
		// The snapshot said there were bytes but the file is gone without
		// a generation bump; treat it as a truncation race.
		return nil, ErrScanTruncated
	}
	buf := make([]byte, n)
	rn, err := fh.ReadAt(buf, off)
	if errors.Is(err, io.EOF) && int64(rn) == n {
		err = nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: scan partition %d: %w", c.part, err)
	}
	return buf, nil
}

// NextChunk implements ScanCursor.
func (c *fileScan) NextChunk(budget int) ([]byte, error) {
	if budget <= 0 {
		budget = DefaultScanChunk
	}
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, err
	}
	if c.off >= c.end {
		return nil, io.EOF
	}
	n := c.end - c.off
	if int64(budget) < n {
		n = int64(budget)
	}
	buf, err := c.readRange(c.off, n)
	if err != nil {
		return nil, err
	}
	c.off += n
	if c.started {
		c.f.stats.ChunkReads++
	} else {
		c.f.stats.ReadOps++
		c.started = true
	}
	c.f.stats.BytesRead += n
	return buf, nil
}

// Tail implements ScanCursor.
func (c *fileScan) Tail() ([]byte, error) {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, err
	}
	fh, ok := c.f.files[c.part]
	if !ok {
		return nil, nil // never appended to, or snapshot was empty
	}
	st, err := fh.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat partition %d: %w", c.part, err)
	}
	if st.Size() <= c.end {
		return nil, nil
	}
	buf, err := c.readRange(c.end, st.Size()-c.end)
	if err != nil {
		return nil, err
	}
	c.f.stats.ChunkReads++
	c.f.stats.BytesRead += int64(len(buf))
	return buf, nil
}

// Close implements ScanCursor.
func (c *fileScan) Close() error {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	c.closed = true
	return nil
}

// Stats implements SpillStore.
func (f *FileSpill) Stats() (IOStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return IOStats{}, fmt.Errorf("store: stats on closed FileSpill")
	}
	return f.stats, nil
}

// Close implements SpillStore, removing all partition files.
func (f *FileSpill) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return nil
	}
	f.done = true
	var firstErr error
	for _, fh := range f.files {
		if err := fh.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := os.RemoveAll(f.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

var (
	_ SpillStore = (*MemSpill)(nil)
	_ SpillStore = (*FileSpill)(nil)
)
