package store

import (
	"testing"
	"testing/quick"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

var testSchema = stream.MustSchema("S",
	stream.Field{Name: "k", Kind: value.KindInt},
	stream.Field{Name: "payload", Kind: value.KindString},
)

func mkState(t *testing.T, nbuckets int) *State {
	t.Helper()
	st, err := NewState("A", 0, nbuckets, NewMemSpill())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func tup(t *testing.T, key int64, ts stream.Time) *stream.Tuple {
	t.Helper()
	return stream.MustTuple(testSchema, ts, value.Int(key), value.Str("p"))
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState("A", -1, 4, NewMemSpill()); err == nil {
		t.Error("negative attr should error")
	}
	if _, err := NewState("A", 0, 0, NewMemSpill()); err == nil {
		t.Error("zero buckets should error")
	}
	if _, err := NewState("A", 0, 4, nil); err == nil {
		t.Error("nil spill should error")
	}
}

func TestInsertAndProbe(t *testing.T) {
	st := mkState(t, 8)
	for i := int64(0); i < 20; i++ {
		if _, err := st.Insert(tup(t, i%5, stream.Time(i))); err != nil {
			t.Fatal(err)
		}
	}
	matches, examined := st.ProbeMem(value.Int(3), nil)
	if len(matches) != 4 {
		t.Fatalf("probe(3) found %d matches, want 4", len(matches))
	}
	if examined < len(matches) {
		t.Errorf("examined %d < matches %d", examined, len(matches))
	}
	// Arrival order preserved.
	for i := 1; i < len(matches); i++ {
		if matches[i].ATS() < matches[i-1].ATS() {
			t.Error("probe results out of arrival order")
		}
	}
	if got := st.Stats(); got.MemTuples != 20 || got.TotalTuples() != 20 {
		t.Errorf("stats = %+v", got)
	}
	if st.MemBytes() <= 0 {
		t.Error("MemBytes should be positive")
	}
}

func TestInsertTooNarrowTuple(t *testing.T) {
	st, err := NewState("A", 5, 4, NewMemSpill())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(tup(t, 1, 0)); err == nil {
		t.Error("tuple narrower than join attr should error")
	}
}

func TestProbeMissesOtherKeys(t *testing.T) {
	st := mkState(t, 1) // single bucket: all keys collide
	st.Insert(tup(t, 1, 0))
	st.Insert(tup(t, 2, 1))
	matches, examined := st.ProbeMem(value.Int(1), nil)
	if len(matches) != 1 {
		t.Errorf("hash collision leaked wrong keys: %d matches", len(matches))
	}
	// Indexed probing resolves the key's group: only the match examined.
	if examined != 1 {
		t.Errorf("examined = %d, want 1 (the matching group)", examined)
	}

	// The scan fallback restores the pre-index accounting: the probe
	// walks the whole bucket.
	st.SetScanFallback(true)
	matches, examined = st.ProbeMem(value.Int(1), nil)
	if len(matches) != 1 {
		t.Errorf("scan fallback: %d matches", len(matches))
	}
	if examined != 2 {
		t.Errorf("scan fallback examined = %d, want full bucket 2", examined)
	}
}

func TestStoredTupleOverlaps(t *testing.T) {
	a := &StoredTuple{T: tup(t, 1, 10), DTS: 20}
	b := &StoredTuple{T: tup(t, 1, 15), DTS: 30}
	c := &StoredTuple{T: tup(t, 1, 25), DTS: InMemory}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a ended before c arrived")
	}
	if !b.Overlaps(c) || !c.Overlaps(b) {
		t.Error("b was resident when c arrived")
	}
	if !c.Resident() || a.Resident() {
		t.Error("Resident broken")
	}
}

func TestFilterMem(t *testing.T) {
	st := mkState(t, 1)
	for i := int64(0); i < 10; i++ {
		st.Insert(tup(t, i, stream.Time(i)))
	}
	removed := st.FilterMem(0, func(s *StoredTuple) bool {
		return s.T.Values[0].IntVal()%2 == 0
	})
	if len(removed) != 5 {
		t.Fatalf("removed %d, want 5", len(removed))
	}
	if got := st.Stats().MemTuples; got != 5 {
		t.Errorf("MemTuples = %d", got)
	}
	matches, _ := st.ProbeMem(value.Int(2), nil)
	if len(matches) != 0 {
		t.Error("filtered tuple still probeable")
	}
	matches, _ = st.ProbeMem(value.Int(3), nil)
	if len(matches) != 1 {
		t.Error("kept tuple lost")
	}
	// Byte accounting returns to zero when everything is removed.
	st.FilterMem(0, func(*StoredTuple) bool { return true })
	if got := st.Stats(); got.MemTuples != 0 || got.MemBytes != 0 {
		t.Errorf("after removing all: %+v", got)
	}
}

func TestPurgeBuffer(t *testing.T) {
	st := mkState(t, 2)
	s1, _ := st.Insert(tup(t, 0, 5))
	removed := st.FilterMem(st.BucketOf(value.Int(0)), func(*StoredTuple) bool { return true })
	if len(removed) != 1 || removed[0] != s1 {
		t.Fatal("FilterMem should return the tuple")
	}
	bi := st.BucketOf(value.Int(0))
	st.AddToPurgeBuffer(bi, s1, 42)
	if s1.DTS != 42 {
		t.Errorf("purge buffer should stamp DTS, got %d", s1.DTS)
	}
	if got := st.Stats(); got.PurgeTuples != 1 || got.TotalTuples() != 1 {
		t.Errorf("stats = %+v", got)
	}
	taken := st.TakePurgeBuffer(bi)
	if len(taken) != 1 || taken[0] != s1 {
		t.Error("TakePurgeBuffer wrong contents")
	}
	if got := st.Stats(); got.PurgeTuples != 0 || got.TotalTuples() != 0 {
		t.Errorf("stats after take = %+v", got)
	}
	if got := st.TakePurgeBuffer(bi); got != nil {
		t.Error("second take should be empty")
	}
}

func TestSpillAndReadDisk(t *testing.T) {
	st := mkState(t, 1)
	var pids []punct.PID
	for i := int64(0); i < 5; i++ {
		s, _ := st.Insert(tup(t, i, stream.Time(i)))
		s.PID = punct.PID(i + 1)
		pids = append(pids, s.PID)
	}
	n, err := st.SpillBucket(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("spilled %d", n)
	}
	got := st.Stats()
	if got.MemTuples != 0 || got.MemBytes != 0 {
		t.Errorf("memory not emptied: %+v", got)
	}
	if got.DiskTuples != 5 || got.DiskBytes <= 0 {
		t.Errorf("disk accounting: %+v", got)
	}
	if !st.HasDisk(0) || !st.AnyDisk() {
		t.Error("HasDisk/AnyDisk false after spill")
	}
	back, err := st.ReadDisk(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("read %d tuples", len(back))
	}
	for i, s := range back {
		if s.DTS != 100 {
			t.Errorf("tuple %d DTS = %d, want spill time 100", i, s.DTS)
		}
		if s.PID != pids[i] {
			t.Errorf("tuple %d pid = %d, want %d", i, s.PID, pids[i])
		}
		if s.T.Values[0].IntVal() != int64(i) {
			t.Errorf("tuple %d key = %v", i, s.T.Values[0])
		}
	}
}

func TestSpillEmptyBucketNoop(t *testing.T) {
	st := mkState(t, 2)
	n, err := st.SpillBucket(1, 50)
	if err != nil || n != 0 {
		t.Errorf("spill empty = %d, %v", n, err)
	}
	if st.AnyDisk() {
		t.Error("no disk data expected")
	}
}

func TestMultipleSpillsAccumulate(t *testing.T) {
	st := mkState(t, 1)
	st.Insert(tup(t, 1, 1))
	st.SpillBucket(0, 10)
	st.Insert(tup(t, 2, 11))
	st.Insert(tup(t, 3, 12))
	st.SpillBucket(0, 20)
	back, err := st.ReadDisk(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("disk holds %d tuples", len(back))
	}
	if back[0].DTS != 10 || back[1].DTS != 20 || back[2].DTS != 20 {
		t.Errorf("DTS stamps wrong: %d %d %d", back[0].DTS, back[1].DTS, back[2].DTS)
	}
}

func TestRewriteDisk(t *testing.T) {
	st := mkState(t, 1)
	for i := int64(0); i < 4; i++ {
		st.Insert(tup(t, i, stream.Time(i)))
	}
	st.SpillBucket(0, 10)
	all, _ := st.ReadDisk(0)
	// Keep only odd keys.
	var keep []*StoredTuple
	for _, s := range all {
		if s.T.Values[0].IntVal()%2 == 1 {
			keep = append(keep, s)
		}
	}
	if err := st.RewriteDisk(0, keep); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().DiskTuples; got != 2 {
		t.Errorf("DiskTuples = %d", got)
	}
	back, err := st.ReadDisk(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].T.Values[0].IntVal() != 1 || back[1].T.Values[0].IntVal() != 3 {
		t.Errorf("rewrite contents wrong: %v", back)
	}
	// Rewrite to empty.
	if err := st.RewriteDisk(0, nil); err != nil {
		t.Fatal(err)
	}
	if st.AnyDisk() || st.Stats().DiskBytes != 0 {
		t.Errorf("disk not empty after rewrite: %+v", st.Stats())
	}
	if got, _ := st.ReadDisk(0); got != nil {
		t.Error("ReadDisk after empty rewrite should be nil")
	}
}

func TestLargestMemBucket(t *testing.T) {
	st := mkState(t, 16)
	if got := st.LargestMemBucket(); got != -1 {
		t.Errorf("empty state largest = %d", got)
	}
	// Insert many copies of one key so one bucket clearly dominates.
	for i := 0; i < 10; i++ {
		st.Insert(tup(t, 77, stream.Time(i)))
	}
	st.Insert(tup(t, 3, 100))
	want := st.BucketOf(value.Int(77))
	if got := st.LargestMemBucket(); got != want {
		t.Errorf("largest = %d, want %d", got, want)
	}
}

func TestBucketOfStable(t *testing.T) {
	st := mkState(t, 7)
	f := func(k int64) bool {
		b := st.BucketOf(value.Int(k))
		return b >= 0 && b < 7 && b == st.BucketOf(value.Int(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoredRoundTripQuick(t *testing.T) {
	f := func(key int64, pid uint32, ats, dts int64) bool {
		s := &StoredTuple{
			T:   stream.MustTuple(testSchema, stream.Time(ats), value.Int(key), value.Str("x")),
			PID: punct.PID(pid),
			DTS: stream.Time(dts),
		}
		enc := appendStored(nil, s)
		got, n, err := decodeStored(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return got.PID == s.PID && got.DTS == s.DTS && got.T.Ts == s.T.Ts &&
			got.T.Values[0].Equal(s.T.Values[0])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeStoredErrors(t *testing.T) {
	good := appendStored(nil, &StoredTuple{T: tup(t, 1, 2), PID: 3, DTS: 4})
	bad := [][]byte{nil, {0x80}, good[:5], good[:len(good)-1]}
	for i, b := range bad {
		if s, _, err := decodeStored(b); err == nil {
			t.Errorf("case %d: decodeStored succeeded: %v", i, s)
		}
	}
}

// Spilling, probing, and accounting must stay consistent under a random
// interleaving of operations.
func TestStateAccountingInvariant(t *testing.T) {
	st := mkState(t, 4)
	inserted, spilled, purged := 0, 0, 0
	for i := int64(0); i < 200; i++ {
		st.Insert(tup(t, i%17, stream.Time(i)))
		inserted++
		switch i % 23 {
		case 7:
			if b := st.LargestMemBucket(); b >= 0 {
				n, err := st.SpillBucket(b, stream.Time(i))
				if err != nil {
					t.Fatal(err)
				}
				spilled += n
			}
		case 15:
			for b := 0; b < st.NumBuckets(); b++ {
				purged += len(st.FilterMem(b, func(s *StoredTuple) bool {
					return s.T.Values[0].IntVal() == i%17
				}))
			}
		}
	}
	got := st.Stats()
	if got.MemTuples+got.DiskTuples != inserted-purged {
		t.Errorf("accounting: mem %d + disk %d != inserted %d - purged %d",
			got.MemTuples, got.DiskTuples, inserted, purged)
	}
	if got.DiskTuples != spilled {
		t.Errorf("DiskTuples = %d, spilled %d", got.DiskTuples, spilled)
	}
	if got.MemBytes < 0 || got.DiskBytes < 0 {
		t.Errorf("negative byte accounting: %+v", got)
	}
}
