package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Regression tests for the spill-path bugs fixed alongside the
// observability layer: the io.ReaderAt EOF contract, stats counted on
// failed writes, and Truncate leaving descriptors open.

// eofReaderAt returns its payload with io.EOF on a read that reaches the
// end — the behaviour io.ReaderAt explicitly permits and which the old
// FileSpill.Read turned into a spurious failure.
type eofReaderAt struct{ data []byte }

func (r eofReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n := copy(p, r.data[off:])
	if int(off)+n == len(r.data) {
		return n, io.EOF
	}
	return n, nil
}

// errReaderAt always fails.
type errReaderAt struct{ err error }

func (r errReaderAt) ReadAt([]byte, int64) (int, error) { return 0, r.err }

func TestReadAtFullReadWithEOFIsSuccess(t *testing.T) {
	got, err := readAt(eofReaderAt{data: []byte("abcdef")}, 6)
	if err != nil {
		t.Fatalf("full read returning io.EOF must succeed, got %v", err)
	}
	if string(got) != "abcdef" {
		t.Errorf("readAt = %q", got)
	}
}

func TestReadAtErrorOnEmptyInputPropagates(t *testing.T) {
	// The old guard (err != nil && size > 0) swallowed real errors on
	// empty partitions.
	boom := errors.New("disk gone")
	if _, err := readAt(errReaderAt{err: boom}, 0); !errors.Is(err, boom) {
		t.Fatalf("error on empty partition swallowed: got %v", err)
	}
}

func TestReadAtShortReadWithEOFIsError(t *testing.T) {
	if _, err := readAt(eofReaderAt{data: []byte("ab")}, 5); !errors.Is(err, io.EOF) {
		t.Fatalf("short read must surface io.EOF, got %v", err)
	}
}

// TestFileSpillAppendErrorLeavesStatsUntouched points a partition file at
// /dev/full so the write fails with ENOSPC, and checks that the failed
// write contributes nothing to the I/O counters.
func TestFileSpillAppendErrorLeavesStatsUntouched(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skipf("/dev/full unavailable: %v", err)
	}
	fs, err := NewFileSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := os.Symlink("/dev/full", fs.partPath(7)); err != nil {
		t.Skipf("cannot symlink: %v", err)
	}
	if err := fs.Append(7, []byte("doomed")); err == nil {
		t.Fatal("append to /dev/full should fail")
	}
	st, err := fs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WriteOps != 0 || st.BytesWritten != 0 {
		t.Errorf("failed write counted in stats: %+v", st)
	}
}

// TestFileSpillTruncateReleasesFile checks that Truncate closes the
// partition's descriptor and removes the file, instead of keeping an open
// handle to a zero-length file forever.
func TestFileSpillTruncateReleasesFile(t *testing.T) {
	fs, err := NewFileSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Append(3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := fs.partPath(3)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("partition file missing before truncate: %v", err)
	}
	if err := fs.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("partition file still on disk after truncate: %v", err)
	}
	if _, ok := fs.files[3]; ok {
		t.Error("files map still holds the truncated partition's handle")
	}
	// The partition is usable again afterwards.
	if err := fs.Append(3, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Read(3); err != nil || string(got) != "new" {
		t.Errorf("Read after truncate+append = %q, %v", got, err)
	}
	// Only real files remain in the spill directory.
	ents, err := os.ReadDir(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".bin" {
			t.Errorf("unexpected entry %q in spill dir", e.Name())
		}
	}
}
