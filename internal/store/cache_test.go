package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestCachedSpillReadHitSkipsInnerIO(t *testing.T) {
	inner := NewMemSpill()
	c := NewCachedSpill(inner, 1<<20)
	// The append lands in an empty partition, so it installs the cache
	// entry directly — the first Read is already a hit.
	if err := c.Append(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Read(3)
		if err != nil || string(got) != "hello" {
			t.Fatalf("Read = %q, %v", got, err)
		}
	}
	st, err := inner.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadOps != 0 {
		t.Errorf("cache hits performed %d inner reads, want 0", st.ReadOps)
	}
	cs := c.CacheStats()
	if cs.Hits != 3 || cs.Misses != 0 {
		t.Errorf("stats = %+v, want 3 hits, 0 misses", cs)
	}
}

func TestCachedSpillMirrorsAppendsAndTruncates(t *testing.T) {
	inner := NewMemSpill()
	c := NewCachedSpill(inner, 1<<20)
	if err := c.Append(0, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(0, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0)
	if err != nil || string(got) != "aabb" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	want, err := inner.Read(0)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("cache %q diverges from inner %q (%v)", got, want, err)
	}
	if err := c.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if sz, err := c.Size(0); err != nil || sz != 0 {
		t.Errorf("Size after truncate = %d, %v", sz, err)
	}
	if got, err := c.Read(0); err != nil || len(got) != 0 {
		t.Errorf("Read after truncate = %q, %v", got, err)
	}
}

func TestCachedSpillMissInstallsEntry(t *testing.T) {
	inner := NewMemSpill()
	// Populate behind the cache's back so the first lookup misses.
	if err := inner.Append(5, []byte("cold-data")); err != nil {
		t.Fatal(err)
	}
	c := NewCachedSpill(inner, 1<<20)
	if got, err := c.Read(5); err != nil || string(got) != "cold-data" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if got, err := c.Read(5); err != nil || string(got) != "cold-data" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	cs := c.CacheStats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss then 1 hit", cs)
	}
	st, _ := inner.Stats()
	if st.ReadOps != 1 {
		t.Errorf("inner ReadOps = %d, want 1", st.ReadOps)
	}
}

func TestCachedSpillEvictionRespectsBudget(t *testing.T) {
	inner := NewMemSpill()
	c := NewCachedSpill(inner, 25)
	for p := 0; p < 5; p++ {
		if err := c.Append(p, bytes.Repeat([]byte{byte(p)}, 10)); err != nil {
			t.Fatal(err)
		}
	}
	cs := c.CacheStats()
	if cs.Bytes > 25 {
		t.Errorf("cache holds %d bytes over budget %d", cs.Bytes, cs.Capacity)
	}
	if cs.Evictions == 0 {
		t.Error("no evictions despite exceeding the budget")
	}
	if cs.Entries != 2 {
		t.Errorf("cache holds %d entries, want 2 (2x10 bytes fit in 25)", cs.Entries)
	}
	// Evicted partitions still read correctly (through the inner store).
	for p := 0; p < 5; p++ {
		got, err := c.Read(p)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(p)}, 10)) {
			t.Errorf("partition %d read %q, %v", p, got, err)
		}
	}
}

func TestCachedSpillOversizedEntryNotCached(t *testing.T) {
	c := NewCachedSpill(NewMemSpill(), 8)
	if err := c.Append(0, []byte("way-too-big-for-cache")); err != nil {
		t.Fatal(err)
	}
	if cs := c.CacheStats(); cs.Entries != 0 || cs.Bytes != 0 {
		t.Errorf("oversized entry cached: %+v", cs)
	}
	if got, err := c.Read(0); err != nil || string(got) != "way-too-big-for-cache" {
		t.Errorf("Read = %q, %v", got, err)
	}
}

func TestCachedSpillScanCompletionInstalls(t *testing.T) {
	inner := NewMemSpill()
	if err := inner.Append(1, []byte("scan-me-in")); err != nil {
		t.Fatal(err)
	}
	c := NewCachedSpill(inner, 1<<20)
	sc, err := c.OpenScan(1)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		chunk, err := sc.NextChunk(4)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
	sc.Close()
	if string(got) != "scan-me-in" {
		t.Fatalf("scan read %q", got)
	}
	cs := c.CacheStats()
	if cs.Entries != 1 {
		t.Fatalf("completed scan did not install the entry: %+v", cs)
	}
	// The next scan hits and touches no inner I/O.
	before, _ := inner.Stats()
	sc2, err := c.OpenScan(1)
	if err != nil {
		t.Fatal(err)
	}
	chunk, err := sc2.NextChunk(0)
	if err != nil || string(chunk) != "scan-me-in" {
		t.Fatalf("hit scan read %q, %v", chunk, err)
	}
	sc2.Close()
	after, _ := inner.Stats()
	if after != before {
		t.Errorf("hit scan touched inner I/O: %+v -> %+v", before, after)
	}
	if cs := c.CacheStats(); cs.Hits != 1 {
		t.Errorf("stats = %+v, want 1 hit", cs)
	}
}

func TestCachedSpillHitRatio(t *testing.T) {
	var s CacheStats
	if s.HitRatio() != 0 {
		t.Error("empty stats should report ratio 0")
	}
	s.Hits, s.Misses = 3, 1
	if got := s.HitRatio(); got != 0.75 {
		t.Errorf("HitRatio = %v, want 0.75", got)
	}
}

// TestCachedSpillConcurrent hammers one cache from many goroutines —
// appends, reads, scans, and truncates racing over a handful of
// partitions — so `go test -race` can prove the locking. Readers accept
// ErrScanTruncated (a truncate won the race) but nothing else.
func TestCachedSpillConcurrent(t *testing.T) {
	c := NewCachedSpill(NewMemSpill(), 512)
	defer c.Close()
	const parts = 4
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := (g + i) % parts
				switch i % 4 {
				case 0:
					if err := c.Append(p, bytes.Repeat([]byte{byte(i)}, 1+i%32)); err != nil {
						report(fmt.Errorf("append: %w", err))
						return
					}
				case 1:
					if _, err := c.Read(p); err != nil {
						report(fmt.Errorf("read: %w", err))
						return
					}
				case 2:
					sc, err := c.OpenScan(p)
					if err != nil {
						report(fmt.Errorf("open scan: %w", err))
						return
					}
					for {
						_, err := sc.NextChunk(8)
						if errors.Is(err, io.EOF) || errors.Is(err, ErrScanTruncated) {
							break
						}
						if err != nil {
							report(fmt.Errorf("next chunk: %w", err))
							sc.Close()
							return
						}
					}
					if _, err := sc.Tail(); err != nil && !errors.Is(err, ErrScanTruncated) {
						report(fmt.Errorf("tail: %w", err))
					}
					sc.Close()
				case 3:
					if err := c.Truncate(p); err != nil {
						report(fmt.Errorf("truncate: %w", err))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
