package store

import (
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// Collision correctness for the key-grouped memory index. Two regimes:
//
//  1. Distinct keys that collide modulo nbuckets (nbuckets = 1 forces
//     every key into one bucket) — groups must stay independent.
//  2. Distinct keys with IDENTICAL full 64-bit hashes (forced through
//     SetHashFuncForTest) — the open-addressing index must fall back to
//     equality confirmation, never merge or shadow groups.

// degenerateHash maps every value to the same full hash, the worst case
// for the group index.
func degenerateHash(value.Value) uint64 { return 42 }

func fillCollided(t *testing.T, st *State) map[int64]int {
	t.Helper()
	// Interleaved arrivals: keys 0..4, key k appears k+1 times.
	want := map[int64]int{}
	ts := stream.Time(0)
	for round := 0; round < 5; round++ {
		for k := int64(round); k < 5; k++ {
			ts += 10
			if _, err := st.Insert(tup(t, k, ts)); err != nil {
				t.Fatal(err)
			}
			want[k]++
		}
	}
	return want
}

func checkProbeIndependence(t *testing.T, st *State, want map[int64]int) {
	t.Helper()
	for k, n := range want {
		matches, examined := st.ProbeMem(value.Int(k), nil)
		if len(matches) != n {
			t.Fatalf("key %d: %d matches, want %d", k, len(matches), n)
		}
		if examined != n {
			t.Errorf("key %d: examined %d, want %d (matches only)", k, examined, n)
		}
		var last stream.Time
		for _, s := range matches {
			if got := s.T.Values[0].IntVal(); got != k {
				t.Fatalf("key %d probe returned tuple with key %d", k, got)
			}
			if s.T.Ts <= last {
				t.Fatalf("key %d matches out of arrival order", k)
			}
			last = s.T.Ts
		}
	}
	if got, _ := st.ProbeMem(value.Int(99), nil); len(got) != 0 {
		t.Errorf("absent key matched %d tuples", len(got))
	}
}

func testCollisionIndependence(t *testing.T, st *State) {
	want := fillCollided(t, st)
	total := 0
	for _, n := range want {
		total += n
	}
	if got := st.Stats(); got.MemTuples != total || got.MemGroups != len(want) {
		t.Fatalf("stats = %+v, want %d tuples in %d groups", got, total, len(want))
	}

	// Probes resolve exactly their own group.
	checkProbeIndependence(t, st, want)

	// The scan fallback agrees on matches (examined becomes occupancy).
	st.SetScanFallback(true)
	for k, n := range want {
		matches, examined := st.ProbeMem(value.Int(k), nil)
		if len(matches) != n {
			t.Fatalf("fallback key %d: %d matches, want %d", k, len(matches), n)
		}
		if examined != st.Bucket(st.BucketOf(value.Int(k))).MemLen() {
			t.Errorf("fallback key %d: examined %d, want bucket occupancy", k, examined)
		}
	}
	st.SetScanFallback(false)

	// Targeted purge removes one whole group and nothing else.
	bkt, removed := st.TakeKeyGroup(value.Int(3))
	if len(removed) != want[3] {
		t.Fatalf("TakeKeyGroup(3) removed %d, want %d", len(removed), want[3])
	}
	for _, s := range removed {
		if s.T.Values[0].IntVal() != 3 {
			t.Fatalf("TakeKeyGroup(3) removed key %d", s.T.Values[0].IntVal())
		}
	}
	if _, again := st.TakeKeyGroup(value.Int(3)); again != nil {
		t.Error("second TakeKeyGroup(3) found tuples")
	}
	total -= want[3]
	delete(want, 3)
	if got := st.Stats(); got.MemTuples != total || got.MemGroups != len(want) {
		t.Fatalf("stats after purge = %+v, want %d tuples in %d groups", got, total, len(want))
	}
	checkProbeIndependence(t, st, want)

	// Spill the bucket and read it back: the disk portion carries every
	// surviving tuple exactly once, so disk joins see collided keys
	// independently too.
	if _, err := st.SpillBucket(bkt, 1<<30); err != nil {
		t.Fatal(err)
	}
	disk, err := st.ReadDisk(bkt)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int{}
	for _, s := range disk {
		got[s.T.Values[0].IntVal()]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("disk key %d: %d tuples, want %d", k, got[k], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("disk holds %d keys, want %d", len(got), len(want))
	}

	// The bucket is reusable after the spill.
	if _, err := st.Insert(tup(t, 3, 1<<31)); err != nil {
		t.Fatal(err)
	}
	if m, ex := st.ProbeMem(value.Int(3), nil); len(m) != 1 || ex != 1 {
		t.Errorf("post-spill insert: %d matches, %d examined", len(m), ex)
	}
}

func TestBucketCollisionIndependence(t *testing.T) {
	// nbuckets = 1: every key lands in the same bucket, full hashes differ.
	testCollisionIndependence(t, mkState(t, 1))
}

func TestFullHashCollisionIndependence(t *testing.T) {
	// All keys share one full 64-bit hash: lookup must confirm equality.
	st := mkState(t, 4)
	st.SetHashFuncForTest(degenerateHash)
	testCollisionIndependence(t, st)
}

func TestSetHashFuncForTestPanicsNonEmpty(t *testing.T) {
	st := mkState(t, 4)
	st.Insert(tup(t, 1, 1))
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-empty state")
		}
	}()
	st.SetHashFuncForTest(degenerateHash)
}

// TestGroupGranularityExpiry drives the sliding-window prefix expiry and
// watches the group accounting: a group disappears exactly when its last
// tuple expires, never earlier.
func TestGroupGranularityExpiry(t *testing.T) {
	st := mkState(t, 1)
	// key 1 at ts 10 and 40, key 2 at ts 20, key 3 at ts 30.
	st.Insert(tup(t, 1, 10))
	st.Insert(tup(t, 2, 20))
	st.Insert(tup(t, 3, 30))
	st.Insert(tup(t, 1, 40))
	if got := st.Stats(); got.MemTuples != 4 || got.MemGroups != 3 {
		t.Fatalf("stats = %+v", got)
	}

	// Cutoff 25 expires ts 10 and 20: key 2's group dies, key 1's
	// survives through its ts-40 tuple.
	expired := st.ExpireMemPrefix(0, 25)
	if len(expired) != 2 {
		t.Fatalf("expired %d, want 2", len(expired))
	}
	if got := st.Stats(); got.MemTuples != 2 || got.MemGroups != 2 {
		t.Fatalf("stats after first expiry = %+v, want 2 tuples in 2 groups", got)
	}
	if m, _ := st.ProbeMem(value.Int(1), nil); len(m) != 1 || m[0].T.Ts != 40 {
		t.Errorf("key 1 group = %v, want the ts-40 tuple only", m)
	}
	if m, _ := st.ProbeMem(value.Int(2), nil); len(m) != 0 {
		t.Error("key 2 survived its last tuple's expiry")
	}

	// Cutoff 50 drains the rest.
	if got := st.ExpireMemPrefix(0, 50); len(got) != 2 {
		t.Fatalf("final expiry removed %d, want 2", len(got))
	}
	if got := st.Stats(); got.MemTuples != 0 || got.MemGroups != 0 {
		t.Fatalf("stats after full expiry = %+v", got)
	}
}
