package store

import (
	"fmt"
	"sync"
)

// FaultOp selects which SpillStore operations a FaultSpill counts toward
// its failure trigger.
type FaultOp uint8

// Fault-countable operations. FaultAny counts every data-path operation
// (Append, Read and Truncate); Size, Stats and Close never fault.
const (
	FaultAppend FaultOp = 1 << iota
	FaultRead
	FaultTruncate

	FaultAny = FaultAppend | FaultRead | FaultTruncate
)

// FaultSpill wraps a SpillStore and injects an error on the Nth counted
// operation and every counted operation after it (a failed disk stays
// failed). It exists so tests can prove the operators surface spill
// errors instead of corrupting state or panicking — the same error path
// the tracer records as a spill-error event.
type FaultSpill struct {
	inner  SpillStore
	mask   FaultOp
	err    error
	mu     sync.Mutex //pjoin:lockrank leaf
	count  int64      // counted ops seen so far
	failAt int64      // 1-based index of the first failing op
}

// NewFaultSpill wraps inner so that the failAt-th operation matching mask
// (1-based), and every matching operation after it, fails with err.
// failAt <= 0 never fails.
func NewFaultSpill(inner SpillStore, mask FaultOp, failAt int64, err error) *FaultSpill {
	if err == nil {
		err = fmt.Errorf("store: injected spill fault")
	}
	return &FaultSpill{inner: inner, mask: mask, err: err, failAt: failAt}
}

// Ops returns how many counted operations have been observed.
func (f *FaultSpill) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// tick counts one operation of the given kind and reports the injected
// error once the trigger is reached.
func (f *FaultSpill) tick(op FaultOp) error {
	if f.mask&op == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.failAt > 0 && f.count >= f.failAt {
		return f.err
	}
	return nil
}

// Append implements SpillStore.
func (f *FaultSpill) Append(partition int, data []byte) error {
	if err := f.tick(FaultAppend); err != nil {
		return err
	}
	return f.inner.Append(partition, data)
}

// Read implements SpillStore.
func (f *FaultSpill) Read(partition int) ([]byte, error) {
	if err := f.tick(FaultRead); err != nil {
		return nil, err
	}
	return f.inner.Read(partition)
}

// Truncate implements SpillStore.
func (f *FaultSpill) Truncate(partition int) error {
	if err := f.tick(FaultTruncate); err != nil {
		return err
	}
	return f.inner.Truncate(partition)
}

// Size implements SpillStore.
func (f *FaultSpill) Size(partition int) (int64, error) { return f.inner.Size(partition) }

// OpenScan implements SpillStore. Opening is free (no data touched); the
// cursor's chunk reads count toward FaultRead like Read does.
func (f *FaultSpill) OpenScan(partition int) (ScanCursor, error) {
	sc, err := f.inner.OpenScan(partition)
	if err != nil {
		return nil, err
	}
	return &faultScan{f: f, inner: sc}, nil
}

// faultScan wraps an inner cursor so every chunk read counts toward the
// fault trigger.
type faultScan struct {
	f     *FaultSpill
	inner ScanCursor
}

func (c *faultScan) NextChunk(budget int) ([]byte, error) {
	if err := c.f.tick(FaultRead); err != nil {
		return nil, err
	}
	return c.inner.NextChunk(budget)
}

func (c *faultScan) Tail() ([]byte, error) {
	if err := c.f.tick(FaultRead); err != nil {
		return nil, err
	}
	return c.inner.Tail()
}

func (c *faultScan) Close() error { return c.inner.Close() }

// Stats implements SpillStore.
func (f *FaultSpill) Stats() (IOStats, error) { return f.inner.Stats() }

// Close implements SpillStore.
func (f *FaultSpill) Close() error { return f.inner.Close() }

var _ SpillStore = (*FaultSpill)(nil)
