package store

import (
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// Micro-benchmarks and enforcement tests for the key-grouped index's two
// perf claims: probes touch only the matching group (O(matches) instead
// of O(occupancy)) and the steady-state hot path stays off the
// allocator (slab-backed wrappers, free-listed nodes).

// probeState builds a single-bucket state holding `occupancy` tuples of
// which `matches` share the probed key (interspersed through the
// arrival order, so a scan cannot stop early).
func probeState(tb testing.TB, occupancy, matches int) (*State, value.Value) {
	tb.Helper()
	st, err := NewState("A", 0, 1, NewMemSpill())
	if err != nil {
		tb.Fatal(err)
	}
	const hot = int64(1 << 40)
	stride := occupancy / matches
	for i := 0; i < occupancy; i++ {
		k := int64(i)
		if i%stride == stride/2 && i/stride < matches {
			k = hot
		}
		tp := stream.MustTuple(testSchema, stream.Time(i+1), value.Int(k), value.Str("p"))
		if _, err := st.Insert(tp); err != nil {
			tb.Fatal(err)
		}
	}
	return st, value.Int(hot)
}

func BenchmarkProbeIndexed(b *testing.B) {
	st, key := probeState(b, 1024, 4)
	dst := make([]*StoredTuple, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = st.ProbeMem(key, dst[:0])
	}
}

func BenchmarkProbeScanFallback(b *testing.B) {
	st, key := probeState(b, 1024, 4)
	st.SetScanFallback(true)
	dst := make([]*StoredTuple, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = st.ProbeMem(key, dst[:0])
	}
}

// TestIndexedProbeSpeedup is the ISSUE acceptance gate: on a
// 1024-occupancy bucket with 4 matches the indexed probe must run at
// least 5x faster than the pre-index full-bucket scan and must not
// allocate. The real gap is ~100x (4 nodes walked vs 1024); 5x leaves
// headroom for noisy CI machines.
func TestIndexedProbeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	st, key := probeState(t, 1024, 4)
	dst := make([]*StoredTuple, 0, 8)

	run := func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst, _ = st.ProbeMem(key, dst[:0])
			}
		})
	}
	indexed := run()
	st.SetScanFallback(true)
	scan := run()
	st.SetScanFallback(false)

	if m, ex := st.ProbeMem(key, dst[:0]); len(m) != 4 || ex != 4 {
		t.Fatalf("probe found %d matches examining %d, want 4/4", len(m), ex)
	}
	speedup := float64(scan.NsPerOp()) / float64(indexed.NsPerOp())
	t.Logf("indexed %d ns/op, scan %d ns/op, speedup %.1fx",
		indexed.NsPerOp(), scan.NsPerOp(), speedup)
	if speedup < 5 {
		t.Errorf("indexed probe only %.1fx faster than scan, want >= 5x", speedup)
	}

	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = st.ProbeMem(key, dst[:0])
	})
	if allocs != 0 {
		t.Errorf("indexed probe allocates %.1f objects per op, want 0", allocs)
	}
}

// TestInsertAllocsAmortised guards the slab/free-list machinery: after a
// purge recycles index nodes, further inserts draw wrappers from the
// current slab chunk and nodes from the free list — amortised well under
// one allocation per insert (a fresh chunk every storedChunk inserts is
// the only steady-state source).
func TestInsertAllocsAmortised(t *testing.T) {
	st := mkState(t, 4)
	tp := tup(t, 7, 1)
	// Prime: fill a group, then purge it so nodes and the group hit the
	// free lists and the slab chunk has room.
	for i := 0; i < 300; i++ {
		if _, err := st.Insert(tp); err != nil {
			t.Fatal(err)
		}
	}
	if _, removed := st.TakeKeyGroup(value.Int(7)); len(removed) != 300 {
		t.Fatalf("primed purge removed %d", len(removed))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := st.Insert(tp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state insert allocates %.2f objects per op, want amortised < 0.5", allocs)
	}
}

// TestFreeListRecycling checks that purge and expiry actually feed the
// free lists: a purge/insert cycle reuses nodes instead of growing the
// heap, with the group index staying correct throughout.
func TestFreeListRecycling(t *testing.T) {
	st := mkState(t, 2)
	for cycle := 0; cycle < 50; cycle++ {
		for i := int64(0); i < 8; i++ {
			if _, err := st.Insert(tup(t, i, stream.Time(cycle*100+int(i)+1))); err != nil {
				t.Fatal(err)
			}
		}
		// Alternate removal styles so both unlink paths recycle.
		if cycle%2 == 0 {
			for i := int64(0); i < 8; i++ {
				if _, rm := st.TakeKeyGroup(value.Int(i)); len(rm) != 1 {
					t.Fatalf("cycle %d key %d: removed %d", cycle, i, len(rm))
				}
			}
		} else {
			for b := 0; b < st.NumBuckets(); b++ {
				st.ExpireMemPrefix(b, 1<<40)
			}
		}
		if got := st.Stats(); got.MemTuples != 0 || got.MemGroups != 0 {
			t.Fatalf("cycle %d left stats %+v", cycle, got)
		}
	}
}
