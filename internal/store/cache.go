package store

import (
	"fmt"
	"io"
	"sync"
)

// CacheStats summarises a CachedSpill's behaviour. Hits and Misses count
// Read and OpenScan lookups; Evictions counts entries dropped to respect
// the byte budget.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	Capacity  int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// CachedSpill wraps a SpillStore with an LRU block cache over whole
// partitions, so hot spilled partitions are re-joined from memory instead
// of paying disk reads on every pass.
//
// The invariant is that a cached entry always mirrors its partition's
// full contents: entries are installed by a full Read, by an Append into
// an empty partition (the shape every bucket spill and rewrite has), or
// by a scan that ran to completion; they are extended in place by later
// Appends and dropped on Truncate or eviction. A Read or OpenScan served
// from the cache performs no inner I/O and counts nothing in IOStats —
// that saved traffic is the cache's benefit, and CacheStats reports it.
type CachedSpill struct {
	mu    sync.Mutex //pjoin:lockrank leaf
	inner SpillStore
	cap   int64
	ent   map[int]*cacheEntry
	gens  map[int]uint64 // bumped on Truncate to invalidate scan snapshots
	// LRU list: head = most recently used, tail = eviction victim.
	head, tail *cacheEntry

	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	part       int
	data       []byte
	prev, next *cacheEntry
}

// NewCachedSpill wraps inner with a cache holding at most capacity bytes
// of partition data. A non-positive capacity disables caching (every
// lookup is a miss and delegates to inner).
func NewCachedSpill(inner SpillStore, capacity int64) *CachedSpill {
	return &CachedSpill{
		inner: inner,
		cap:   capacity,
		ent:   make(map[int]*cacheEntry),
		gens:  make(map[int]uint64),
	}
}

// Inner returns the wrapped store.
func (c *CachedSpill) Inner() SpillStore { return c.inner }

// CacheStats returns the cache counters.
func (c *CachedSpill) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.ent), Bytes: c.bytes, Capacity: c.cap,
	}
}

// touch moves e to the head of the LRU list (inserting it if new).
func (c *CachedSpill) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// Push front.
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the map and list.
func (c *CachedSpill) unlink(e *cacheEntry) {
	delete(c.ent, e.part)
	c.bytes -= int64(len(e.data))
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// install caches data as partition part's full contents, evicting from
// the cold end to respect the budget. Oversized entries are not cached.
func (c *CachedSpill) install(part int, data []byte) {
	if int64(len(data)) > c.cap {
		return
	}
	if old, ok := c.ent[part]; ok {
		c.unlink(old)
	}
	e := &cacheEntry{part: part, data: data}
	c.ent[part] = e
	c.bytes += int64(len(data))
	c.touch(e)
	c.evictOver(e)
}

// evictOver drops cold entries until the budget holds, never evicting
// keep (the entry just touched).
func (c *CachedSpill) evictOver(keep *cacheEntry) {
	for c.bytes > c.cap && c.tail != nil && c.tail != keep {
		c.unlink(c.tail)
		c.evictions++
	}
}

// Append implements SpillStore. An append into an empty partition
// installs the data as the partition's (complete) cached contents; an
// append to a partition already cached extends the entry in place.
func (c *CachedSpill) Append(partition int, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sizeBefore int64 = -1
	if _, ok := c.ent[partition]; !ok && c.cap > 0 {
		sz, err := c.inner.Size(partition)
		if err != nil {
			return err
		}
		sizeBefore = sz
	}
	if err := c.inner.Append(partition, data); err != nil {
		return err
	}
	if e, ok := c.ent[partition]; ok {
		e.data = append(e.data, data...)
		c.bytes += int64(len(data))
		c.touch(e)
		c.evictOver(e)
	} else if sizeBefore == 0 {
		buf := make([]byte, len(data))
		copy(buf, data)
		c.install(partition, buf)
	}
	return nil
}

// Read implements SpillStore. A hit is served from memory with no inner
// I/O; a miss reads through and caches the result.
func (c *CachedSpill) Read(partition int) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.ent[partition]; ok {
		c.hits++
		c.touch(e)
		out := make([]byte, len(e.data))
		copy(out, e.data)
		return out, nil
	}
	c.misses++
	data, err := c.inner.Read(partition)
	if err != nil {
		return nil, err
	}
	if c.cap > 0 && len(data) > 0 {
		buf := make([]byte, len(data))
		copy(buf, data)
		c.install(partition, buf)
	}
	return data, nil
}

// Truncate implements SpillStore.
func (c *CachedSpill) Truncate(partition int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.inner.Truncate(partition); err != nil {
		return err
	}
	if e, ok := c.ent[partition]; ok {
		c.unlink(e)
	}
	c.gens[partition]++
	return nil
}

// Size implements SpillStore.
func (c *CachedSpill) Size(partition int) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.ent[partition]; ok {
		return int64(len(e.data)), nil
	}
	return c.inner.Size(partition)
}

// Stats implements SpillStore: the wrapped store's I/O counters, i.e.
// only the traffic the cache did not absorb.
func (c *CachedSpill) Stats() (IOStats, error) { return c.inner.Stats() }

// Close implements SpillStore.
func (c *CachedSpill) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ent = nil
	c.head, c.tail = nil, nil
	c.bytes = 0
	return c.inner.Close()
}

// OpenScan implements SpillStore. A hit scans the cached bytes with no
// inner I/O. A miss delegates to the inner store's cursor and, if the
// scan runs to completion while the partition is still exactly the
// snapshot it read, installs the accumulated bytes.
func (c *CachedSpill) OpenScan(partition int) (ScanCursor, error) {
	c.mu.Lock()
	if e, ok := c.ent[partition]; ok {
		c.hits++
		c.touch(e)
		// data[:end] is immutable: in-place appends write beyond end and
		// reallocation leaves this array behind, so the cursor can hold
		// the slice without copying.
		cur := &cacheScan{c: c, part: partition, gen: c.gens[partition], data: e.data[:len(e.data)]}
		c.mu.Unlock()
		return cur, nil
	}
	c.misses++
	gen := c.gens[partition]
	c.mu.Unlock()
	ic, err := c.inner.OpenScan(partition)
	if err != nil {
		return nil, err
	}
	return &fillScan{c: c, part: partition, gen: gen, inner: ic}, nil
}

// cacheScan serves a scan from cached bytes.
type cacheScan struct {
	c      *CachedSpill
	part   int
	gen    uint64
	data   []byte
	off    int
	closed bool
}

// NextChunk implements ScanCursor.
func (s *cacheScan) NextChunk(budget int) ([]byte, error) {
	if budget <= 0 {
		budget = DefaultScanChunk
	}
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: use of closed scan cursor")
	}
	if s.c.gens[s.part] != s.gen {
		return nil, ErrScanTruncated
	}
	if s.off >= len(s.data) {
		return nil, io.EOF
	}
	n := len(s.data) - s.off
	if budget < n {
		n = budget
	}
	out := make([]byte, n)
	copy(out, s.data[s.off:s.off+n])
	s.off += n
	return out, nil
}

// Tail implements ScanCursor: bytes appended after the open. If the entry
// was evicted meanwhile the tail falls back to a full inner read.
func (s *cacheScan) Tail() ([]byte, error) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: use of closed scan cursor")
	}
	if s.c.gens[s.part] != s.gen {
		return nil, ErrScanTruncated
	}
	if e, ok := s.c.ent[s.part]; ok {
		if len(e.data) <= len(s.data) {
			return nil, nil
		}
		out := make([]byte, len(e.data)-len(s.data))
		copy(out, e.data[len(s.data):])
		return out, nil
	}
	full, err := s.c.inner.Read(s.part)
	if err != nil {
		return nil, err
	}
	if len(full) <= len(s.data) {
		return nil, nil
	}
	out := make([]byte, len(full)-len(s.data))
	copy(out, full[len(s.data):])
	return out, nil
}

// Close implements ScanCursor.
func (s *cacheScan) Close() error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.closed = true
	return nil
}

// fillScan delegates a scan to the inner store while accumulating the
// chunks; a scan that reaches EOF with the partition unchanged installs
// its bytes into the cache so the next pass hits.
type fillScan struct {
	c     *CachedSpill
	part  int
	gen   uint64
	inner ScanCursor
	acc   []byte
	done  bool
}

// NextChunk implements ScanCursor.
func (s *fillScan) NextChunk(budget int) ([]byte, error) {
	chunk, err := s.inner.NextChunk(budget)
	if err == io.EOF && !s.done {
		s.done = true
		s.tryInstall()
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	s.acc = append(s.acc, chunk...)
	return chunk, nil
}

// tryInstall caches the accumulated snapshot if the partition still is
// exactly that snapshot (no append or truncate raced with the scan).
func (s *fillScan) tryInstall() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.c.cap <= 0 || len(s.acc) == 0 {
		return
	}
	if s.c.gens[s.part] != s.gen {
		return
	}
	if _, ok := s.c.ent[s.part]; ok {
		return
	}
	sz, err := s.c.inner.Size(s.part)
	if err != nil || sz != int64(len(s.acc)) {
		return
	}
	s.c.install(s.part, s.acc)
	s.acc = nil
}

// Tail implements ScanCursor.
func (s *fillScan) Tail() ([]byte, error) { return s.inner.Tail() }

// Close implements ScanCursor.
func (s *fillScan) Close() error { return s.inner.Close() }

var _ SpillStore = (*CachedSpill)(nil)
