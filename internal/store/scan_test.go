package store

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"pjoin/internal/stream"
)

// scanSuite runs the ScanCursor contract against any implementation.
func scanSuite(t *testing.T, mk func(t *testing.T) SpillStore) {
	t.Run("ChunksCoverSnapshotExactly", func(t *testing.T) {
		sp := mk(t)
		defer sp.Close()
		payload := bytes.Repeat([]byte("0123456789"), 10)
		if err := sp.Append(4, payload); err != nil {
			t.Fatal(err)
		}
		sc, err := sp.OpenScan(4)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		var got []byte
		for {
			chunk, err := sc.NextChunk(7)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(chunk) == 0 || len(chunk) > 7 {
				t.Fatalf("chunk size %d outside (0, budget]", len(chunk))
			}
			got = append(got, chunk...)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("chunks reassemble to %q, want %q", got, payload)
		}
		// EOF is sticky.
		if _, err := sc.NextChunk(7); !errors.Is(err, io.EOF) {
			t.Errorf("NextChunk after EOF = %v, want io.EOF", err)
		}
	})

	t.Run("DuplicateSafeUnderAppend", func(t *testing.T) {
		sp := mk(t)
		defer sp.Close()
		if err := sp.Append(0, []byte("old-bytes")); err != nil {
			t.Fatal(err)
		}
		sc, err := sp.OpenScan(0)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		first, err := sc.NextChunk(4)
		if err != nil {
			t.Fatal(err)
		}
		// An append racing with the scan must not leak into NextChunk...
		if err := sp.Append(0, []byte("NEW")); err != nil {
			t.Fatal(err)
		}
		var got []byte
		got = append(got, first...)
		for {
			chunk, err := sc.NextChunk(4)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, chunk...)
		}
		if string(got) != "old-bytes" {
			t.Errorf("snapshot read %q, want %q", got, "old-bytes")
		}
		// ...and is exactly what Tail returns.
		tail, err := sc.Tail()
		if err != nil {
			t.Fatal(err)
		}
		if string(tail) != "NEW" {
			t.Errorf("Tail = %q, want %q", tail, "NEW")
		}
	})

	t.Run("EmptyPartitionScansToEOF", func(t *testing.T) {
		sp := mk(t)
		defer sp.Close()
		sc, err := sp.OpenScan(9)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		if _, err := sc.NextChunk(0); !errors.Is(err, io.EOF) {
			t.Errorf("NextChunk on empty partition = %v, want io.EOF", err)
		}
		tail, err := sc.Tail()
		if err != nil || tail != nil {
			t.Errorf("Tail on empty partition = %q, %v", tail, err)
		}
	})

	t.Run("TruncateInvalidatesCursor", func(t *testing.T) {
		sp := mk(t)
		defer sp.Close()
		if err := sp.Append(2, []byte("doomed-partition")); err != nil {
			t.Fatal(err)
		}
		sc, err := sp.OpenScan(2)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		if _, err := sc.NextChunk(4); err != nil {
			t.Fatal(err)
		}
		if err := sp.Truncate(2); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.NextChunk(4); !errors.Is(err, ErrScanTruncated) {
			t.Errorf("NextChunk after Truncate = %v, want ErrScanTruncated", err)
		}
		if _, err := sc.Tail(); !errors.Is(err, ErrScanTruncated) {
			t.Errorf("Tail after Truncate = %v, want ErrScanTruncated", err)
		}
		// A fresh cursor over the re-filled partition works.
		if err := sp.Append(2, []byte("fresh")); err != nil {
			t.Fatal(err)
		}
		sc2, err := sp.OpenScan(2)
		if err != nil {
			t.Fatal(err)
		}
		defer sc2.Close()
		chunk, err := sc2.NextChunk(0)
		if err != nil || string(chunk) != "fresh" {
			t.Errorf("fresh cursor read %q, %v", chunk, err)
		}
	})

	t.Run("ClosedCursorErrors", func(t *testing.T) {
		sp := mk(t)
		defer sp.Close()
		if err := sp.Append(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		sc, err := sp.OpenScan(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.NextChunk(0); err == nil || errors.Is(err, io.EOF) {
			t.Errorf("NextChunk on closed cursor = %v, want error", err)
		}
	})
}

func TestMemSpillScan(t *testing.T) {
	scanSuite(t, func(t *testing.T) SpillStore { return NewMemSpill() })
}

func TestFileSpillScan(t *testing.T) {
	scanSuite(t, func(t *testing.T) SpillStore {
		fs, err := NewFileSpill(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestCachedSpillScan(t *testing.T) {
	scanSuite(t, func(t *testing.T) SpillStore {
		return NewCachedSpill(NewMemSpill(), 1<<20)
	})
}

func TestCachedSpillScanUncached(t *testing.T) {
	// The miss path (delegating cursor) must satisfy the same contract.
	scanSuite(t, func(t *testing.T) SpillStore {
		return NewCachedSpill(NewMemSpill(), 0)
	})
}

func TestScanStatsCounting(t *testing.T) {
	sp := NewMemSpill()
	payload := bytes.Repeat([]byte("ab"), 50) // 100 bytes
	if err := sp.Append(0, payload); err != nil {
		t.Fatal(err)
	}
	sc, err := sp.OpenScan(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for {
		if _, err := sc.NextChunk(40); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	st, err := sp.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 3 chunks of <=40 bytes: the first pays the seek (ReadOp), the two
	// continuations are ChunkReads; all bytes are counted.
	if st.ReadOps != 1 || st.ChunkReads != 2 {
		t.Errorf("ReadOps=%d ChunkReads=%d, want 1 and 2", st.ReadOps, st.ChunkReads)
	}
	if st.BytesRead != 100 {
		t.Errorf("BytesRead=%d, want 100", st.BytesRead)
	}
}

// diskScanAll drains a DiskScan with the given byte budget.
func diskScanAll(t *testing.T, ds *DiskScan, budget int) []*StoredTuple {
	t.Helper()
	var out []*StoredTuple
	for i := 0; ; i++ {
		var done bool
		var err error
		out, done, err = ds.Next(budget, out)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return out
		}
		if i > 1<<20 {
			t.Fatal("DiskScan did not terminate")
		}
	}
}

func TestDiskScanMatchesReadDisk(t *testing.T) {
	st := mkState(t, 4)
	for i := int64(0); i < 40; i++ {
		if _, err := st.Insert(tup(t, i, stream.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := st.SpillBucket(i, 100); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		want, err := st.ReadDisk(i)
		if err != nil {
			t.Fatal(err)
		}
		// A 5-byte budget is smaller than any record, forcing the
		// carry-over reassembly path on every chunk.
		ds, err := st.OpenDiskScan(i)
		if err != nil {
			t.Fatal(err)
		}
		got := diskScanAll(t, ds, 5)
		if err := st.FinishDiskScan(ds, nil, false); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("bucket %d: scan read %d tuples, ReadDisk %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].PID != want[j].PID || got[j].DTS != want[j].DTS ||
				!got[j].T.Values[0].Equal(want[j].T.Values[0]) || got[j].T.Ts != want[j].T.Ts {
				t.Errorf("bucket %d tuple %d: scan %+v vs ReadDisk %+v", i, j, got[j], want[j])
			}
		}
	}
}

func TestOpenDiskScanEmptyBucket(t *testing.T) {
	st := mkState(t, 4)
	ds, err := st.OpenDiskScan(2)
	if err != nil {
		t.Fatal(err)
	}
	if ds != nil {
		t.Error("OpenDiskScan on empty bucket should return nil")
	}
}

func TestFinishDiskScanRewritePreservesTail(t *testing.T) {
	st := mkState(t, 1)
	for i := int64(0); i < 10; i++ {
		if _, err := st.Insert(tup(t, i, stream.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.SpillBucket(0, 50); err != nil {
		t.Fatal(err)
	}
	ds, err := st.OpenDiskScan(0)
	if err != nil {
		t.Fatal(err)
	}
	all := diskScanAll(t, ds, 16)
	// Concurrent spill while the scan is open: these tuples must survive
	// the rewrite untouched.
	for i := int64(100); i < 103; i++ {
		if _, err := st.Insert(tup(t, i, stream.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.SpillBucket(0, 200); err != nil {
		t.Fatal(err)
	}
	// Keep only even keys from the snapshot.
	var keep []*StoredTuple
	for _, s := range all {
		if k := s.T.Values[0].IntVal(); k%2 == 0 {
			keep = append(keep, s)
		}
	}
	if err := st.FinishDiskScan(ds, keep, true); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadDisk(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(keep) + 3; len(got) != want {
		t.Fatalf("after rewrite: %d disk tuples, want %d", len(got), want)
	}
	// Snapshot keeps first (in order), then the tail spill.
	for j, s := range got {
		k := s.T.Values[0].IntVal()
		if j < len(keep) {
			if k%2 != 0 || k >= 100 {
				t.Errorf("kept tuple %d has key %d", j, k)
			}
		} else if k < 100 {
			t.Errorf("tail tuple %d has key %d, want >= 100", j, k)
		}
	}
	stats := st.Stats()
	if stats.DiskTuples != len(got) {
		t.Errorf("accounting DiskTuples=%d, want %d", stats.DiskTuples, len(got))
	}
}

func TestFinishDiskScanNoRewriteLeavesDiskAlone(t *testing.T) {
	st := mkState(t, 1)
	for i := int64(0); i < 6; i++ {
		if _, err := st.Insert(tup(t, i, stream.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.SpillBucket(0, 10); err != nil {
		t.Fatal(err)
	}
	before := st.Stats()
	ds, err := st.OpenDiskScan(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = diskScanAll(t, ds, 32)
	if err := st.FinishDiskScan(ds, nil, false); err != nil {
		t.Fatal(err)
	}
	if st.Stats() != before {
		t.Errorf("read-only scan changed accounting: %+v vs %+v", st.Stats(), before)
	}
	got, err := st.ReadDisk(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("disk holds %d tuples after read-only scan, want 6", len(got))
	}
}
