package store

import (
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// The seq-guarded memoizing probe (ProbeMemCached) must be observably
// identical to a fresh ProbeMem — same matches in the same order, same
// examined count — no matter how probes interleave with mutations. The
// batched join relies on this: a vectorized ProcessBatch reuses one
// MemProbe across a whole batch and only the seq guard keeps a run of
// same-key probes honest across the inserts the batch itself performs.

// sameProbe asserts the cached probe result equals a fresh probe for
// key against st.
func sameProbe(t *testing.T, st *State, key value.Value, mp *MemProbe) {
	t.Helper()
	got, gotEx := st.ProbeMemCached(key, mp)
	want, wantEx := st.ProbeMem(key, nil)
	if gotEx != wantEx {
		t.Fatalf("key %v: cached examined = %d, fresh = %d", key, gotEx, wantEx)
	}
	if len(got) != len(want) {
		t.Fatalf("key %v: cached matches = %d, fresh = %d", key, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("key %v: match %d differs: cached %v, fresh %v", key, i, got[i].T, want[i].T)
		}
	}
}

func TestProbeMemCachedTracksEveryMutation(t *testing.T) {
	st := mkState(t, 4)
	var mp MemProbe
	k := value.Int(3)

	// Empty state: miss memoized too.
	sameProbe(t, st, k, &mp)

	// Insert invalidates: the cached probe must see each new tuple.
	for i := int64(0); i < 12; i++ {
		if _, err := st.Insert(tup(t, i%4, stream.Time(i+1))); err != nil {
			t.Fatal(err)
		}
		sameProbe(t, st, k, &mp)
	}

	// Repeated probes without mutation are hits — and still identical.
	sameProbe(t, st, k, &mp)
	sameProbe(t, st, k, &mp)

	// Key switch with the same MemProbe must re-probe.
	sameProbe(t, st, value.Int(1), &mp)
	sameProbe(t, st, k, &mp)

	// Targeted group removal.
	if _, removed := st.TakeKeyGroup(k); len(removed) == 0 {
		t.Fatal("TakeKeyGroup removed nothing")
	}
	sameProbe(t, st, k, &mp)

	// Predicate purge on the probed key's bucket.
	h := st.hash(value.Int(1))
	bkt := int(h % uint64(len(st.bkts)))
	st.FilterMem(bkt, func(s *StoredTuple) bool { return s.T.Ts <= 4 })
	sameProbe(t, st, value.Int(1), &mp)

	// Window expiry.
	st.ExpireMemPrefix(bkt, 8)
	sameProbe(t, st, value.Int(1), &mp)

	// Spilling a bucket empties its memory portion.
	if _, err := st.SpillBucket(bkt, 100); err != nil {
		t.Fatal(err)
	}
	sameProbe(t, st, value.Int(1), &mp)

	// Release drops the memoized result; the next probe is a clean miss.
	mp.Release()
	if mp.valid {
		t.Fatal("Release left the probe valid")
	}
	sameProbe(t, st, k, &mp)
}

func TestProbeMemCachedScanFallback(t *testing.T) {
	st := mkState(t, 1)
	st.SetScanFallback(true)
	var mp MemProbe
	for i := int64(0); i < 10; i++ {
		if _, err := st.Insert(tup(t, i%3, stream.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-index regime: examined = bucket occupancy, and the memoized
	// result must reproduce that accounting exactly.
	sameProbe(t, st, value.Int(0), &mp)
	if mp.examined != 10 {
		t.Fatalf("scan-fallback examined = %d, want full occupancy 10", mp.examined)
	}
	sameProbe(t, st, value.Int(0), &mp)
}

// TestProbeMemCachedHitDoesNotAllocate pins the batched probe budget:
// after the first (memoizing) probe, same-key hits are zero-allocation
// — the whole point of reusing one MemProbe across a batch.
func TestProbeMemCachedHitDoesNotAllocate(t *testing.T) {
	st := mkState(t, 4)
	for i := int64(0); i < 64; i++ {
		if _, err := st.Insert(tup(t, i%8, stream.Time(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	var mp MemProbe
	k := value.Int(5)
	st.ProbeMemCached(k, &mp) // memoize
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 8; j++ {
			st.ProbeMemCached(k, &mp)
		}
	})
	if allocs != 0 {
		t.Errorf("cached probe hit allocates %.1f objects per 8-probe run, want 0", allocs)
	}
}
