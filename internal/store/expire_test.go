package store

import (
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

func TestExpireMemPrefixBasics(t *testing.T) {
	st := mkState(t, 1)
	for i := int64(0); i < 10; i++ {
		st.Insert(tup(t, i, stream.Time(i*10)))
	}
	// Cutoff 45: tuples at ts 0,10,20,30,40 expire.
	expired := st.ExpireMemPrefix(0, 45)
	if len(expired) != 5 {
		t.Fatalf("expired %d, want 5", len(expired))
	}
	for i, s := range expired {
		if s.T.Ts != stream.Time(i*10) {
			t.Errorf("expired[%d].Ts = %d", i, s.T.Ts)
		}
	}
	if got := st.Stats(); got.MemTuples != 5 {
		t.Errorf("MemTuples = %d", got.MemTuples)
	}
	// Remaining tuples still probeable, in order.
	matches, _ := st.ProbeMem(value.Int(7), nil)
	if len(matches) != 1 {
		t.Error("in-window tuple lost")
	}
	matches, _ = st.ProbeMem(value.Int(3), nil)
	if len(matches) != 0 {
		t.Error("expired tuple still probeable")
	}
}

func TestExpireMemPrefixNothingExpired(t *testing.T) {
	st := mkState(t, 1)
	st.Insert(tup(t, 1, 100))
	if got := st.ExpireMemPrefix(0, 50); got != nil {
		t.Errorf("expired %v, want none", got)
	}
	if got := st.ExpireMemPrefix(0, 100); got != nil {
		t.Errorf("cutoff equal to ts should keep the tuple, expired %v", got)
	}
}

func TestExpireMemPrefixAll(t *testing.T) {
	st := mkState(t, 1)
	for i := int64(0); i < 4; i++ {
		st.Insert(tup(t, i, stream.Time(i)))
	}
	expired := st.ExpireMemPrefix(0, 1000)
	if len(expired) != 4 {
		t.Fatalf("expired %d", len(expired))
	}
	got := st.Stats()
	if got.MemTuples != 0 || got.MemBytes != 0 {
		t.Errorf("accounting after full expiry: %+v", got)
	}
	// Insert after expiry still works.
	st.Insert(tup(t, 9, 2000))
	if got := st.Stats().MemTuples; got != 1 {
		t.Errorf("MemTuples = %d", got)
	}
}

func TestExpireMemPrefixStopsAtFirstValid(t *testing.T) {
	// The prefix property: even if a LATER tuple (by position) had an
	// older timestamp it would not be touched — but State only appends
	// in arrival order, so positions == timestamp order. Verify the
	// contract by expiring with a cutoff between two tuples.
	st := mkState(t, 1)
	st.Insert(tup(t, 1, 10))
	st.Insert(tup(t, 2, 20))
	st.Insert(tup(t, 3, 30))
	expired := st.ExpireMemPrefix(0, 25)
	if len(expired) != 2 {
		t.Fatalf("expired %d, want 2", len(expired))
	}
	b := st.Bucket(0)
	rest := b.AppendMem(nil)
	if len(rest) != 1 || rest[0].T.Ts != 30 {
		t.Errorf("remaining = %v", rest)
	}
}

func TestStateWithFileSpill(t *testing.T) {
	// The full spill/read/rewrite cycle against a real filesystem-backed
	// store, proving MemSpill and FileSpill are interchangeable.
	fs, err := NewFileSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	st, err := NewState("A", 0, 4, fs)
	if err != nil {
		t.Fatal(err)
	}
	var keys []int64
	for i := int64(0); i < 50; i++ {
		k := i % 7
		keys = append(keys, k)
		if _, err := st.Insert(tup(t, k, stream.Time(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Spill every bucket.
	for b := 0; b < st.NumBuckets(); b++ {
		if _, err := st.SpillBucket(b, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().MemTuples != 0 || st.Stats().DiskTuples != 50 {
		t.Fatalf("stats = %+v", st.Stats())
	}
	// Read everything back and verify the key multiset survived.
	got := map[int64]int{}
	for b := 0; b < st.NumBuckets(); b++ {
		tuples, err := st.ReadDisk(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range tuples {
			got[s.T.Values[0].IntVal()]++
		}
	}
	want := map[int64]int{}
	for _, k := range keys {
		want[k]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("key %d: got %d, want %d", k, got[k], n)
		}
	}
	// Rewrite one bucket with a filtered subset, re-read, verify.
	tuples, _ := st.ReadDisk(0)
	if len(tuples) > 0 {
		if err := st.RewriteDisk(0, tuples[:1]); err != nil {
			t.Fatal(err)
		}
		back, err := st.ReadDisk(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != 1 {
			t.Errorf("rewritten bucket holds %d", len(back))
		}
	}
	if st, err := fs.Stats(); err != nil || st.BytesWritten == 0 || st.BytesRead == 0 {
		t.Errorf("file spill stats empty or errored: %+v, %v", st, err)
	}
}
