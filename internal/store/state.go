package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// InMemory is the DTS (departure timestamp) of a tuple that is still in
// the memory-resident portion of its bucket. Once a tuple is relocated to
// disk or moved to the purge buffer its DTS is set to that moment and
// never changes again; the [ATS, DTS) residence interval is what the
// disk-join duplicate avoidance reasons about.
const InMemory stream.Time = math.MaxInt64

// StoredTuple is a tuple held in a join state, augmented with the
// punctuation-index pid (Fig. 2(b) of the paper; NoPID = null) and its
// memory-residence interval end.
type StoredTuple struct {
	T   *stream.Tuple
	PID punct.PID
	DTS stream.Time
}

// ATS returns the tuple's arrival timestamp (start of memory residence).
func (s *StoredTuple) ATS() stream.Time { return s.T.Ts }

// Resident reports whether the tuple is still memory-resident.
func (s *StoredTuple) Resident() bool { return s.DTS == InMemory }

// Overlaps reports whether the memory-residence intervals of s and o
// overlapped. Two tuples whose residence overlapped were joined by the
// memory join when the later one arrived, so disk joins must skip such
// pairs.
func (s *StoredTuple) Overlaps(o *StoredTuple) bool {
	return s.ATS() < o.DTS && o.ATS() < s.DTS
}

// Bucket is one hash bucket of a State: a memory-resident portion, a
// purge buffer (tuples purged by punctuations that may still owe
// left-over joins against the opposite state's disk portion, §3.1), and
// accounting for the on-disk portion.
type Bucket struct {
	Mem        []*StoredTuple
	PurgeBuf   []*StoredTuple
	DiskTuples int
	DiskBytes  int64
}

// Stats summarises a State's size. TotalTuples is the paper's "number of
// tuples in the join state" metric (memory + purge buffer + disk).
type Stats struct {
	MemTuples   int
	PurgeTuples int
	DiskTuples  int
	MemBytes    int64
	DiskBytes   int64
}

// TotalTuples returns the full state size in tuples.
func (s Stats) TotalTuples() int { return s.MemTuples + s.PurgeTuples + s.DiskTuples }

// State is the join state for one input stream: a hash table over the
// join attribute. All mutation goes through State methods so the size
// accounting stays consistent.
type State struct {
	name  string
	attr  int
	spill SpillStore
	bkts  []Bucket
	stats Stats
}

// NewState creates a state named name (used in errors) hashing on
// attribute index attr with nbuckets buckets, spilling to spill.
func NewState(name string, attr, nbuckets int, spill SpillStore) (*State, error) {
	if attr < 0 {
		return nil, fmt.Errorf("store: state %s: negative join attribute %d", name, attr)
	}
	if nbuckets <= 0 {
		return nil, fmt.Errorf("store: state %s: need at least one bucket, got %d", name, nbuckets)
	}
	if spill == nil {
		return nil, fmt.Errorf("store: state %s: nil spill store", name)
	}
	return &State{name: name, attr: attr, spill: spill, bkts: make([]Bucket, nbuckets)}, nil
}

// Name returns the state's stream name.
func (st *State) Name() string { return st.name }

// Attr returns the join attribute index.
func (st *State) Attr() int { return st.attr }

// NumBuckets returns the bucket count.
func (st *State) NumBuckets() int { return len(st.bkts) }

// Bucket returns bucket i for inspection. Callers must not mutate it
// directly; use the State methods.
func (st *State) Bucket(i int) *Bucket { return &st.bkts[i] }

// Stats returns the current size accounting.
func (st *State) Stats() Stats { return st.stats }

// Key returns t's join-attribute value.
func (st *State) Key(t *stream.Tuple) value.Value { return t.Values[st.attr] }

// BucketOf returns the bucket index for a join value.
func (st *State) BucketOf(key value.Value) int {
	return int(key.Hash() % uint64(len(st.bkts)))
}

// Insert adds a new arrival to the memory-resident portion of its bucket
// and returns the stored wrapper.
func (st *State) Insert(t *stream.Tuple) (*StoredTuple, error) {
	if len(t.Values) <= st.attr {
		return nil, fmt.Errorf("store: state %s: tuple width %d lacks join attribute %d", st.name, len(t.Values), st.attr)
	}
	s := &StoredTuple{T: t, PID: punct.NoPID, DTS: InMemory}
	b := &st.bkts[st.BucketOf(st.Key(t))]
	b.Mem = append(b.Mem, s)
	st.stats.MemTuples++
	st.stats.MemBytes += int64(t.EncodedSize())
	return s, nil
}

// ProbeMem appends to dst the memory-resident tuples whose join attribute
// equals key, in arrival order, and returns the extended slice. The
// number of tuples *examined* (bucket occupancy) is returned too, for
// cost accounting: probing walks the whole bucket.
func (st *State) ProbeMem(key value.Value, dst []*StoredTuple) (matches []*StoredTuple, examined int) {
	b := &st.bkts[st.BucketOf(key)]
	for _, s := range b.Mem {
		if st.Key(s.T).Equal(key) {
			dst = append(dst, s)
		}
	}
	return dst, len(b.Mem)
}

// MemBytes returns the in-memory byte accounting (mem portion only; the
// purge buffer is counted separately since it is about to leave).
func (st *State) MemBytes() int64 { return st.stats.MemBytes }

// FilterMem removes from bucket i's memory portion every tuple for which
// drop returns true and returns the removed tuples. Accounting is
// updated; the caller handles pid-count bookkeeping and purge-buffer
// placement of the removed tuples.
func (st *State) FilterMem(i int, drop func(*StoredTuple) bool) []*StoredTuple {
	b := &st.bkts[i]
	var removed []*StoredTuple
	kept := b.Mem[:0]
	for _, s := range b.Mem {
		if drop(s) {
			removed = append(removed, s)
			st.stats.MemTuples--
			st.stats.MemBytes -= int64(s.T.EncodedSize())
		} else {
			kept = append(kept, s)
		}
	}
	// Zero the tail so dropped tuples are collectable.
	for j := len(kept); j < len(b.Mem); j++ {
		b.Mem[j] = nil
	}
	b.Mem = kept
	return removed
}

// ExpireMemPrefix removes and returns the leading memory-resident tuples
// of bucket i whose arrival timestamp is before cutoff. Because the
// memory portion is kept in arrival order, expired tuples form a prefix
// and the scan stops at the first still-valid tuple — the sliding-window
// invalidation optimisation of the paper's §6.
func (st *State) ExpireMemPrefix(i int, cutoff stream.Time) []*StoredTuple {
	b := &st.bkts[i]
	n := 0
	for n < len(b.Mem) && b.Mem[n].T.Ts < cutoff {
		n++
	}
	if n == 0 {
		return nil
	}
	expired := make([]*StoredTuple, n)
	copy(expired, b.Mem[:n])
	rest := b.Mem[n:]
	// Shift in place so the backing array doesn't pin expired tuples.
	copy(b.Mem, rest)
	for j := len(rest); j < len(b.Mem); j++ {
		b.Mem[j] = nil
	}
	b.Mem = b.Mem[:len(rest)]
	st.stats.MemTuples -= n
	for _, s := range expired {
		st.stats.MemBytes -= int64(s.T.EncodedSize())
	}
	return expired
}

// AddToPurgeBuffer stamps the tuple's departure time and parks it in
// bucket i's purge buffer. The tuple must already have been removed from
// the memory portion (via FilterMem).
func (st *State) AddToPurgeBuffer(i int, s *StoredTuple, now stream.Time) {
	s.DTS = now
	st.bkts[i].PurgeBuf = append(st.bkts[i].PurgeBuf, s)
	st.stats.PurgeTuples++
}

// TakePurgeBuffer empties bucket i's purge buffer and returns its
// contents; the caller completes their left-over joins and decrements
// punctuation counts.
func (st *State) TakePurgeBuffer(i int) []*StoredTuple {
	b := &st.bkts[i]
	out := b.PurgeBuf
	b.PurgeBuf = nil
	st.stats.PurgeTuples -= len(out)
	return out
}

// SpillBucket relocates bucket i's entire memory portion to disk,
// stamping each tuple's DTS with now (paper §3.3, following XJoin's
// memory-overflow resolution). It returns the number of tuples moved.
func (st *State) SpillBucket(i int, now stream.Time) (int, error) {
	b := &st.bkts[i]
	if len(b.Mem) == 0 {
		return 0, nil
	}
	var buf []byte
	for _, s := range b.Mem {
		s.DTS = now
		buf = appendStored(buf, s)
	}
	if err := st.spill.Append(i, buf); err != nil {
		return 0, fmt.Errorf("store: state %s: spill bucket %d: %w", st.name, i, err)
	}
	n := len(b.Mem)
	b.DiskTuples += n
	b.DiskBytes += int64(len(buf))
	st.stats.DiskTuples += n
	st.stats.DiskBytes += int64(len(buf))
	st.stats.MemTuples -= n
	for _, s := range b.Mem {
		st.stats.MemBytes -= int64(s.T.EncodedSize())
	}
	b.Mem = nil
	return n, nil
}

// LargestMemBucket returns the index of the bucket with the most
// memory-resident tuples (the spill victim XJoin picks), or -1 if the
// whole memory portion is empty.
func (st *State) LargestMemBucket() int {
	best, bestN := -1, 0
	for i := range st.bkts {
		if n := len(st.bkts[i].Mem); n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// ReadDisk decodes and returns bucket i's on-disk portion in spill order.
func (st *State) ReadDisk(i int) ([]*StoredTuple, error) {
	b := &st.bkts[i]
	if b.DiskTuples == 0 {
		return nil, nil
	}
	raw, err := st.spill.Read(i)
	if err != nil {
		return nil, fmt.Errorf("store: state %s: read bucket %d: %w", st.name, i, err)
	}
	out := make([]*StoredTuple, 0, b.DiskTuples)
	off := 0
	for off < len(raw) {
		s, n, err := decodeStored(raw[off:])
		if err != nil {
			return nil, fmt.Errorf("store: state %s: decode bucket %d at offset %d: %w", st.name, i, off, err)
		}
		out = append(out, s)
		off += n
	}
	if len(out) != b.DiskTuples {
		return nil, fmt.Errorf("store: state %s: bucket %d holds %d tuples, accounting says %d",
			st.name, i, len(out), b.DiskTuples)
	}
	return out, nil
}

// RewriteDisk replaces bucket i's on-disk portion with the given tuples
// (used by disk-side purge: read, filter, write back). Tuples keep their
// existing DTS stamps.
func (st *State) RewriteDisk(i int, tuples []*StoredTuple) error {
	b := &st.bkts[i]
	if err := st.spill.Truncate(i); err != nil {
		return fmt.Errorf("store: state %s: truncate bucket %d: %w", st.name, i, err)
	}
	st.stats.DiskTuples -= b.DiskTuples
	st.stats.DiskBytes -= b.DiskBytes
	b.DiskTuples = 0
	b.DiskBytes = 0
	if len(tuples) == 0 {
		return nil
	}
	var buf []byte
	for _, s := range tuples {
		buf = appendStored(buf, s)
	}
	if err := st.spill.Append(i, buf); err != nil {
		return fmt.Errorf("store: state %s: rewrite bucket %d: %w", st.name, i, err)
	}
	b.DiskTuples = len(tuples)
	b.DiskBytes = int64(len(buf))
	st.stats.DiskTuples += len(tuples)
	st.stats.DiskBytes += int64(len(buf))
	return nil
}

// MemBucketSkew summarises hash-bucket balance: the ratio of the fullest
// bucket's memory-resident tuple count to the mean over all buckets
// (1.0 = perfectly uniform, higher = more skewed). Returns 0 for an
// empty memory portion. This is the bucket-occupancy gauge the
// observability layer samples.
func (st *State) MemBucketSkew() float64 {
	if st.stats.MemTuples == 0 {
		return 0
	}
	maxN := 0
	for i := range st.bkts {
		if n := len(st.bkts[i].Mem); n > maxN {
			maxN = n
		}
	}
	mean := float64(st.stats.MemTuples) / float64(len(st.bkts))
	return float64(maxN) / mean
}

// HasDisk reports whether bucket i has a non-empty on-disk portion.
func (st *State) HasDisk(i int) bool { return st.bkts[i].DiskTuples > 0 }

// AnyDisk reports whether any bucket has an on-disk portion.
func (st *State) AnyDisk() bool { return st.stats.DiskTuples > 0 }

// appendStored encodes a stored tuple: pid uvarint, DTS 8 bytes, then the
// tuple encoding.
func appendStored(dst []byte, s *StoredTuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.PID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.DTS))
	return s.T.AppendBinary(dst)
}

func decodeStored(b []byte) (*StoredTuple, int, error) {
	pid, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("bad pid varint")
	}
	off := sz
	if len(b) < off+8 {
		return nil, 0, fmt.Errorf("truncated DTS")
	}
	dts := stream.Time(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	t, n, err := stream.DecodeTuple(b[off:])
	if err != nil {
		return nil, 0, err
	}
	return &StoredTuple{T: t, PID: punct.PID(pid), DTS: dts}, off + n, nil
}
