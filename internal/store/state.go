package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// InMemory is the DTS (departure timestamp) of a tuple that is still in
// the memory-resident portion of its bucket. Once a tuple is relocated to
// disk or moved to the purge buffer its DTS is set to that moment and
// never changes again; the [ATS, DTS) residence interval is what the
// disk-join duplicate avoidance reasons about.
const InMemory stream.Time = math.MaxInt64

// StoredTuple is a tuple held in a join state, augmented with the
// punctuation-index pid (Fig. 2(b) of the paper; NoPID = null) and its
// memory-residence interval end.
type StoredTuple struct {
	T   *stream.Tuple
	PID punct.PID
	DTS stream.Time
}

// ATS returns the tuple's arrival timestamp (start of memory residence).
func (s *StoredTuple) ATS() stream.Time { return s.T.Ts }

// Resident reports whether the tuple is still memory-resident.
func (s *StoredTuple) Resident() bool { return s.DTS == InMemory }

// Overlaps reports whether the memory-residence intervals of s and o
// overlapped. Two tuples whose residence overlapped were joined by the
// memory join when the later one arrived, so disk joins must skip such
// pairs.
func (s *StoredTuple) Overlaps(o *StoredTuple) bool {
	return s.ATS() < o.DTS && o.ATS() < s.DTS
}

// Bucket is one hash bucket of a State: a key-grouped memory-resident
// portion (see memindex.go), a purge buffer (tuples purged by
// punctuations that may still owe left-over joins against the opposite
// state's disk portion, §3.1), and accounting for the on-disk portion.
type Bucket struct {
	mem        memIndex
	PurgeBuf   []*StoredTuple
	DiskTuples int
	DiskBytes  int64
}

// MemLen returns the number of memory-resident tuples in the bucket.
func (b *Bucket) MemLen() int { return b.mem.ntuples }

// MemGroups returns the number of distinct join keys resident in the
// bucket.
func (b *Bucket) MemGroups() int { return b.mem.ngroups }

// ForEachMem calls fn for every memory-resident tuple in arrival order.
// fn must not mutate the state.
func (b *Bucket) ForEachMem(fn func(*StoredTuple)) {
	for n := b.mem.ahead; n != nil; n = n.anext {
		fn(n.s)
	}
}

// AppendMem appends the memory-resident tuples to dst in arrival order
// and returns the extended slice.
func (b *Bucket) AppendMem(dst []*StoredTuple) []*StoredTuple {
	for n := b.mem.ahead; n != nil; n = n.anext {
		dst = append(dst, n.s)
	}
	return dst
}

// Stats summarises a State's size. TotalTuples is the paper's "number of
// tuples in the join state" metric (memory + purge buffer + disk).
type Stats struct {
	MemTuples   int
	MemGroups   int // distinct join keys in the memory portion
	PurgeTuples int
	DiskTuples  int
	MemBytes    int64
	DiskBytes   int64
}

// TotalTuples returns the full state size in tuples.
func (s Stats) TotalTuples() int { return s.MemTuples + s.PurgeTuples + s.DiskTuples }

// State is the join state for one input stream: a hash table over the
// join attribute whose buckets group their tuples by key (memindex.go).
// All mutation goes through State methods so the size accounting and the
// occupancy tracker stay consistent.
type State struct {
	name  string
	attr  int
	spill SpillStore
	bkts  []Bucket
	stats Stats

	al   alloc
	occ  occTracker
	hash func(value.Value) uint64

	// seq counts mutations of the memory portion (inserts, purges,
	// expiry, spills). A MemProbe memoized at sequence s is valid as
	// long as seq == s: no tuple entered or left memory since, so a
	// fresh probe would return the identical matches and examined
	// count. This is what makes ProbeMemCached's hit path exact.
	seq uint64

	// scanProbe selects the pre-index fallback: probes walk the whole
	// bucket (examined = occupancy) instead of resolving the key's group.
	// The group index is still maintained; only the probe path and its
	// cost accounting revert. See SetScanFallback.
	scanProbe bool
}

// NewState creates a state named name (used in errors) hashing on
// attribute index attr with nbuckets buckets, spilling to spill.
func NewState(name string, attr, nbuckets int, spill SpillStore) (*State, error) {
	if attr < 0 {
		return nil, fmt.Errorf("store: state %s: negative join attribute %d", name, attr)
	}
	if nbuckets <= 0 {
		return nil, fmt.Errorf("store: state %s: need at least one bucket, got %d", name, nbuckets)
	}
	if spill == nil {
		return nil, fmt.Errorf("store: state %s: nil spill store", name)
	}
	return &State{
		name: name, attr: attr, spill: spill,
		bkts: make([]Bucket, nbuckets),
		occ:  newOccTracker(nbuckets),
		hash: value.Value.Hash,
	}, nil
}

// SetScanFallback switches probing to the pre-index full-bucket scan
// (true) or back to the group index (false). It exists so the indexed
// path can be compared against the old behaviour (equivalence tests,
// baseline benchmarks) without keeping two states of code.
func (st *State) SetScanFallback(on bool) { st.scanProbe = on }

// SetHashFuncForTest replaces the value-hash function, so tests can force
// full-hash collisions through the group index. The state must be empty.
func (st *State) SetHashFuncForTest(fn func(value.Value) uint64) {
	if st.stats.TotalTuples() != 0 {
		panic("store: SetHashFuncForTest on non-empty state")
	}
	st.hash = fn
}

// Name returns the state's stream name.
func (st *State) Name() string { return st.name }

// Attr returns the join attribute index.
func (st *State) Attr() int { return st.attr }

// NumBuckets returns the bucket count.
func (st *State) NumBuckets() int { return len(st.bkts) }

// Bucket returns bucket i for inspection. Callers must not mutate it
// directly; use the State methods.
func (st *State) Bucket(i int) *Bucket { return &st.bkts[i] }

// Stats returns the current size accounting.
func (st *State) Stats() Stats { return st.stats }

// IOStats returns the spill store's cumulative I/O counters. Disk-pass
// provenance (internal/obs/span) snapshots these around a pass so the
// spill reads a pass caused are attributed to its trace.
func (st *State) IOStats() (IOStats, error) { return st.spill.Stats() }

// SpillCacheStats returns the spill cache's counters when the spill
// store is (or wraps) a cache, and the zero value otherwise — the
// cache-hit side of a pass's I/O attribution.
func (st *State) SpillCacheStats() CacheStats {
	if c, ok := st.spill.(interface{ CacheStats() CacheStats }); ok {
		return c.CacheStats()
	}
	return CacheStats{}
}

// Key returns t's join-attribute value.
func (st *State) Key(t *stream.Tuple) value.Value { return t.Values[st.attr] }

// BucketOf returns the bucket index for a join value.
func (st *State) BucketOf(key value.Value) int {
	return int(st.hash(key) % uint64(len(st.bkts)))
}

// Insert adds a new arrival to the memory-resident portion of its bucket
// and returns the stored wrapper. The wrapper comes from a slab (one
// allocation per storedChunk inserts) and its index node from a free
// list, so steady-state insertion allocates far less than one object per
// tuple.
//
//pjoin:hotpath
func (st *State) Insert(t *stream.Tuple) (*StoredTuple, error) {
	if len(t.Values) <= st.attr {
		//pjoin:allow hotpath malformed-tuple error path: never taken on schema-valid streams
		return nil, fmt.Errorf("store: state %s: tuple width %d lacks join attribute %d", st.name, len(t.Values), st.attr)
	}
	key := t.Values[st.attr]
	h := st.hash(key)
	i := int(h % uint64(len(st.bkts)))
	s := st.al.newStored(t)
	st.seq++
	if st.bkts[i].mem.insert(&st.al, key, h, s) {
		st.stats.MemGroups++
	}
	st.occ.add(i, 1)
	st.stats.MemTuples++
	st.stats.MemBytes += int64(t.EncodedSize())
	return s, nil
}

// ProbeMem appends to dst the memory-resident tuples whose join attribute
// equals key, in arrival order, and returns the extended slice along
// with the number of tuples *examined*, for cost accounting. On the
// indexed path the probe resolves the key's group directly, so examined
// equals the number of matches (O(matches)); on the scan fallback the
// whole bucket is walked and examined is its occupancy, like the
// pre-index implementation.
//
//pjoin:hotpath
func (st *State) ProbeMem(key value.Value, dst []*StoredTuple) (matches []*StoredTuple, examined int) {
	h := st.hash(key)
	b := &st.bkts[h%uint64(len(st.bkts))]
	if st.scanProbe {
		for n := b.mem.ahead; n != nil; n = n.anext {
			if st.Key(n.s.T).Equal(key) {
				dst = append(dst, n.s)
			}
		}
		return dst, b.mem.ntuples
	}
	g := b.mem.lookup(key, h)
	if g == nil {
		return dst, 0
	}
	for n := g.head; n != nil; n = n.gnext {
		dst = append(dst, n.s)
	}
	return dst, g.n
}

// MemProbe memoizes one ProbeMem result so a run of same-key probes
// against an unchanged memory portion pays the hash + group lookup
// once. The matches slice doubles as the probe's scratch buffer, so a
// MemProbe also replaces a caller-held reusable []*StoredTuple.
type MemProbe struct {
	seq      uint64
	key      value.Value
	valid    bool
	matches  []*StoredTuple
	examined int
}

// Release invalidates the memoized result and drops the stored-tuple
// pointers (the slice capacity is kept). Call it when the probed state
// may purge tuples the cache pins, e.g. at a batch boundary.
//
//pjoin:hotpath
func (mp *MemProbe) Release() {
	mp.valid = false
	mp.key = value.Value{}
	for i := range mp.matches {
		mp.matches[i] = nil
	}
	mp.matches = mp.matches[:0]
}

// ProbeMemCached is ProbeMem with memoization: if mp holds the result
// of a probe for the same key and the memory portion has not mutated
// since (seq guard), the memoized matches and examined count are
// returned without touching the index — bit-identical to a fresh probe,
// including the cost accounting. On a miss it probes normally and
// memoizes into mp.
//
//pjoin:hotpath
func (st *State) ProbeMemCached(key value.Value, mp *MemProbe) (matches []*StoredTuple, examined int) {
	if mp.valid && mp.seq == st.seq && mp.key.Equal(key) {
		return mp.matches, mp.examined
	}
	for i := range mp.matches {
		mp.matches[i] = nil
	}
	mp.matches, mp.examined = st.ProbeMem(key, mp.matches[:0])
	mp.seq = st.seq
	mp.key = key
	mp.valid = true
	return mp.matches, mp.examined
}

// MemBytes returns the in-memory byte accounting (mem portion only; the
// purge buffer is counted separately since it is about to leave).
func (st *State) MemBytes() int64 { return st.stats.MemBytes }

// removeAccounting updates the size counters for one tuple leaving
// bucket i's memory portion.
func (st *State) removeAccounting(i int, s *StoredTuple, groupGone bool) {
	st.stats.MemTuples--
	st.stats.MemBytes -= int64(s.T.EncodedSize())
	st.occ.add(i, -1)
	if groupGone {
		st.stats.MemGroups--
	}
}

// FilterMem removes from bucket i's memory portion every tuple for which
// drop returns true (evaluated in arrival order) and returns the removed
// tuples. Accounting is updated; the caller handles pid-count bookkeeping
// and purge-buffer placement of the removed tuples.
func (st *State) FilterMem(i int, drop func(*StoredTuple) bool) []*StoredTuple {
	b := &st.bkts[i]
	var removed []*StoredTuple
	for n := b.mem.ahead; n != nil; {
		next := n.anext
		if drop(n.s) {
			removed = append(removed, n.s)
			st.removeAccounting(i, n.s, b.mem.unlink(&st.al, n))
			st.al.freeNode(n)
		}
		n = next
	}
	if len(removed) > 0 {
		st.seq++
	}
	return removed
}

// TakeKeyGroup removes and returns the entire memory-resident group of
// the given join value (in arrival order) together with its bucket
// index. This is the O(matches) purge path for constant and enumeration
// punctuation patterns: no other group is touched.
func (st *State) TakeKeyGroup(key value.Value) (bucket int, removed []*StoredTuple) {
	h := st.hash(key)
	bucket = int(h % uint64(len(st.bkts)))
	b := &st.bkts[bucket]
	removed = b.mem.takeGroup(&st.al, key, h)
	if len(removed) == 0 {
		return bucket, nil
	}
	st.seq++
	st.stats.MemTuples -= len(removed)
	st.stats.MemGroups--
	for _, s := range removed {
		st.stats.MemBytes -= int64(s.T.EncodedSize())
	}
	st.occ.add(bucket, -len(removed))
	return bucket, removed
}

// ExpireMemPrefix removes and returns the leading memory-resident tuples
// of bucket i whose arrival timestamp is before cutoff. The arrival list
// is threaded across the key groups in arrival order, so expired tuples
// form a prefix, the scan stops at the first still-valid tuple — the
// sliding-window invalidation optimisation of the paper's §6 — and each
// expired node is its group's head (group chains are suborders of the
// arrival list), keeping every unlink O(1).
func (st *State) ExpireMemPrefix(i int, cutoff stream.Time) []*StoredTuple {
	b := &st.bkts[i]
	var expired []*StoredTuple
	for n := b.mem.ahead; n != nil && n.s.T.Ts < cutoff; {
		next := n.anext
		expired = append(expired, n.s)
		st.removeAccounting(i, n.s, b.mem.unlink(&st.al, n))
		st.al.freeNode(n)
		n = next
	}
	if len(expired) > 0 {
		st.seq++
	}
	return expired
}

// AddToPurgeBuffer stamps the tuple's departure time and parks it in
// bucket i's purge buffer. The tuple must already have been removed from
// the memory portion (via FilterMem or TakeKeyGroup).
func (st *State) AddToPurgeBuffer(i int, s *StoredTuple, now stream.Time) {
	s.DTS = now
	st.bkts[i].PurgeBuf = append(st.bkts[i].PurgeBuf, s)
	st.stats.PurgeTuples++
}

// TakePurgeBuffer empties bucket i's purge buffer and returns its
// contents; the caller completes their left-over joins and decrements
// punctuation counts.
func (st *State) TakePurgeBuffer(i int) []*StoredTuple {
	b := &st.bkts[i]
	out := b.PurgeBuf
	b.PurgeBuf = nil
	st.stats.PurgeTuples -= len(out)
	return out
}

// SpillBucket relocates bucket i's entire memory portion to disk in
// arrival order, stamping each tuple's DTS with now (paper §3.3,
// following XJoin's memory-overflow resolution). It returns the number
// of tuples moved.
func (st *State) SpillBucket(i int, now stream.Time) (int, error) {
	b := &st.bkts[i]
	n := b.mem.ntuples
	if n == 0 {
		return 0, nil
	}
	st.seq++
	var buf []byte
	for nd := b.mem.ahead; nd != nil; nd = nd.anext {
		nd.s.DTS = now
		buf = appendStored(buf, nd.s)
	}
	if err := st.spill.Append(i, buf); err != nil {
		return 0, fmt.Errorf("store: state %s: spill bucket %d: %w", st.name, i, err)
	}
	b.DiskTuples += n
	b.DiskBytes += int64(len(buf))
	st.stats.DiskTuples += n
	st.stats.DiskBytes += int64(len(buf))
	st.stats.MemTuples -= n
	st.stats.MemGroups -= b.mem.ngroups
	for nd := b.mem.ahead; nd != nil; nd = nd.anext {
		st.stats.MemBytes -= int64(nd.s.T.EncodedSize())
	}
	b.mem.reset(&st.al)
	st.occ.set(i, 0)
	return n, nil
}

// LargestMemBucket returns the index of the bucket with the most
// memory-resident tuples (the spill victim XJoin picks), or -1 if the
// whole memory portion is empty. The occupancy tracker answers without
// scanning the bucket array.
func (st *State) LargestMemBucket() int { return st.occ.largest() }

// ReadDisk decodes and returns bucket i's on-disk portion in spill order.
func (st *State) ReadDisk(i int) ([]*StoredTuple, error) {
	b := &st.bkts[i]
	if b.DiskTuples == 0 {
		return nil, nil
	}
	raw, err := st.spill.Read(i)
	if err != nil {
		return nil, fmt.Errorf("store: state %s: read bucket %d: %w", st.name, i, err)
	}
	out := make([]*StoredTuple, 0, b.DiskTuples)
	off := 0
	for off < len(raw) {
		s, n, err := decodeStored(raw[off:])
		if err != nil {
			return nil, fmt.Errorf("store: state %s: decode bucket %d at offset %d: %w", st.name, i, off, err)
		}
		out = append(out, s)
		off += n
	}
	if len(out) != b.DiskTuples {
		return nil, fmt.Errorf("store: state %s: bucket %d holds %d tuples, accounting says %d",
			st.name, i, len(out), b.DiskTuples)
	}
	return out, nil
}

// RewriteDisk replaces bucket i's on-disk portion with the given tuples
// (used by disk-side purge: read, filter, write back). Tuples keep their
// existing DTS stamps.
func (st *State) RewriteDisk(i int, tuples []*StoredTuple) error {
	b := &st.bkts[i]
	if err := st.spill.Truncate(i); err != nil {
		return fmt.Errorf("store: state %s: truncate bucket %d: %w", st.name, i, err)
	}
	st.stats.DiskTuples -= b.DiskTuples
	st.stats.DiskBytes -= b.DiskBytes
	b.DiskTuples = 0
	b.DiskBytes = 0
	if len(tuples) == 0 {
		return nil
	}
	var buf []byte
	for _, s := range tuples {
		buf = appendStored(buf, s)
	}
	if err := st.spill.Append(i, buf); err != nil {
		return fmt.Errorf("store: state %s: rewrite bucket %d: %w", st.name, i, err)
	}
	b.DiskTuples = len(tuples)
	b.DiskBytes = int64(len(buf))
	st.stats.DiskTuples += len(tuples)
	st.stats.DiskBytes += int64(len(buf))
	return nil
}

// DiskScan is a resumable cursor over one bucket's on-disk portion: the
// chunked counterpart of ReadDisk. The scan covers exactly the tuples
// that were on disk when it opened; tuples spilled afterwards are left
// alone (FinishDiskScan preserves them through the cursor's tail).
type DiskScan struct {
	st         *State
	i          int
	cur        ScanCursor
	carry      []byte // undecoded bytes of a record split across chunks
	snapTuples int    // DiskTuples when the scan opened
	read       int
	eof        bool
}

// OpenDiskScan opens a chunked scan of bucket i's on-disk portion, or
// returns nil if the bucket has none.
func (st *State) OpenDiskScan(i int) (*DiskScan, error) {
	b := &st.bkts[i]
	if b.DiskTuples == 0 {
		return nil, nil
	}
	cur, err := st.spill.OpenScan(i)
	if err != nil {
		return nil, fmt.Errorf("store: state %s: scan bucket %d: %w", st.name, i, err)
	}
	return &DiskScan{st: st, i: i, cur: cur, snapTuples: b.DiskTuples}, nil
}

// Next reads up to budget more bytes of the snapshot, appends the decoded
// tuples to dst, and reports whether the scan is exhausted. A record
// split across the chunk boundary is carried over to the next call.
func (ds *DiskScan) Next(budget int, dst []*StoredTuple) ([]*StoredTuple, bool, error) {
	if ds.eof && len(ds.carry) == 0 {
		return dst, true, nil
	}
	if !ds.eof {
		chunk, err := ds.cur.NextChunk(budget)
		switch {
		case errors.Is(err, io.EOF):
			ds.eof = true
		case err != nil:
			return dst, false, fmt.Errorf("store: state %s: scan bucket %d: %w", ds.st.name, ds.i, err)
		default:
			ds.carry = append(ds.carry, chunk...)
		}
	}
	consumed := 0
	for consumed < len(ds.carry) {
		s, n, err := decodeStored(ds.carry[consumed:])
		if err != nil {
			if errors.Is(err, errShortRecord) && !ds.eof {
				break // retry once the next chunk arrives
			}
			return dst, false, fmt.Errorf("store: state %s: decode bucket %d: %w", ds.st.name, ds.i, err)
		}
		dst = append(dst, s)
		ds.read++
		consumed += n
	}
	rest := len(ds.carry) - consumed
	copy(ds.carry, ds.carry[consumed:])
	ds.carry = ds.carry[:rest]
	done := ds.eof && rest == 0
	if done && ds.read != ds.snapTuples {
		return dst, false, fmt.Errorf("store: state %s: bucket %d scan read %d tuples, accounting says %d",
			ds.st.name, ds.i, ds.read, ds.snapTuples)
	}
	return dst, done, nil
}

// FinishDiskScan closes the scan. With rewrite true, the bucket's on-disk
// portion is replaced by keep plus whatever was spilled after the scan
// opened (the cursor's tail) — the chunked counterpart of RewriteDisk,
// safe against appends that raced with the scan.
func (st *State) FinishDiskScan(ds *DiskScan, keep []*StoredTuple, rewrite bool) error {
	defer ds.cur.Close()
	if !rewrite {
		return nil
	}
	b := &st.bkts[ds.i]
	tail, err := ds.cur.Tail()
	if err != nil {
		return fmt.Errorf("store: state %s: scan tail bucket %d: %w", st.name, ds.i, err)
	}
	tailTuples := b.DiskTuples - ds.snapTuples
	if err := st.spill.Truncate(ds.i); err != nil {
		return fmt.Errorf("store: state %s: truncate bucket %d: %w", st.name, ds.i, err)
	}
	st.stats.DiskTuples -= b.DiskTuples
	st.stats.DiskBytes -= b.DiskBytes
	b.DiskTuples = 0
	b.DiskBytes = 0
	var buf []byte
	for _, s := range keep {
		buf = appendStored(buf, s)
	}
	buf = append(buf, tail...)
	if len(buf) == 0 {
		return nil
	}
	if err := st.spill.Append(ds.i, buf); err != nil {
		return fmt.Errorf("store: state %s: rewrite bucket %d: %w", st.name, ds.i, err)
	}
	n := len(keep) + tailTuples
	b.DiskTuples = n
	b.DiskBytes = int64(len(buf))
	st.stats.DiskTuples += n
	st.stats.DiskBytes += int64(len(buf))
	return nil
}

// MemBucketSkew summarises hash-bucket balance: the ratio of the fullest
// bucket's memory-resident tuple count to the mean over all buckets
// (1.0 = perfectly uniform, higher = more skewed). Returns 0 for an
// empty memory portion. This is the bucket-occupancy gauge the
// observability layer samples; the tracked maximum makes it O(1).
func (st *State) MemBucketSkew() float64 {
	if st.stats.MemTuples == 0 {
		return 0
	}
	mean := float64(st.stats.MemTuples) / float64(len(st.bkts))
	return float64(st.occ.max) / mean
}

// HasDisk reports whether bucket i has a non-empty on-disk portion.
func (st *State) HasDisk(i int) bool { return st.bkts[i].DiskTuples > 0 }

// AnyDisk reports whether any bucket has an on-disk portion.
func (st *State) AnyDisk() bool { return st.stats.DiskTuples > 0 }

// maxStoredRecord bounds a spill record's body length; a longer length
// prefix means corruption, not a huge tuple.
const maxStoredRecord = 1 << 30

// errShortRecord reports that a buffer ends before the record it starts
// does: a chunked scan keeps the bytes and retries once more arrive.
var errShortRecord = errors.New("store: spill record continues past buffer")

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendStored encodes a stored tuple: a uvarint body length, then the
// body — pid uvarint, DTS 8 bytes, tuple encoding. The length prefix
// lets a chunked scan distinguish a record split across chunk boundaries
// from corruption.
func appendStored(dst []byte, s *StoredTuple) []byte {
	body := uvarintLen(uint64(s.PID)) + 8 + s.T.EncodedSize()
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = binary.AppendUvarint(dst, uint64(s.PID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.DTS))
	return s.T.AppendBinary(dst)
}

func decodeStored(b []byte) (*StoredTuple, int, error) {
	body, sz := binary.Uvarint(b)
	if sz == 0 {
		return nil, 0, errShortRecord
	}
	if sz < 0 || body == 0 || body > maxStoredRecord {
		return nil, 0, fmt.Errorf("bad record length")
	}
	if len(b) < sz+int(body) {
		return nil, 0, errShortRecord
	}
	rec := b[sz : sz+int(body)]
	pid, psz := binary.Uvarint(rec)
	if psz <= 0 {
		return nil, 0, fmt.Errorf("bad pid varint")
	}
	off := psz
	if len(rec) < off+8 {
		return nil, 0, fmt.Errorf("truncated DTS")
	}
	dts := stream.Time(binary.LittleEndian.Uint64(rec[off:]))
	off += 8
	t, n, err := stream.DecodeTuple(rec[off:])
	if err != nil {
		return nil, 0, err
	}
	if off+n != len(rec) {
		return nil, 0, fmt.Errorf("record length %d does not match contents %d", len(rec), off+n)
	}
	return &StoredTuple{T: t, PID: punct.PID(pid), DTS: dts}, sz + int(body), nil
}
