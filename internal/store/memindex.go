package store

import (
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// This file implements the key-grouped memory index of a bucket: an
// open-addressing hash table over the full 64-bit value hash (with
// equality confirmation) whose entries are per-key group chains, plus a
// bucket-global arrival-ordered list threaded across the groups.
//
// Layout per bucket:
//
//	slots  ──▶ [ *group | tombstone | nil | ... ]     open addressing
//	group  ──▶ key, hash, chain head/tail, size
//	node   ──▶ one stored tuple; linked twice:
//	             gprev/gnext  — its group's chain (arrival order per key)
//	             aprev/anext  — the bucket's arrival list (global order)
//
// Probing a key resolves its group in O(1) expected and yields exactly
// the matching tuples; purging an exhausted key unlinks one whole group;
// prefix expiry walks the arrival list, and because every group chain is
// a suborder of the arrival list, each expired node is its group's head
// — both removals stay O(1) per tuple.

// storedChunk is the slab size for StoredTuple wrappers: one allocation
// amortised over this many inserts.
const storedChunk = 256

// alloc is the per-State slab allocator. StoredTuple wrappers are
// bump-allocated from chunks and never recycled — they escape the memory
// index (purge buffers, disk reads, probe results hold them), so reuse
// would risk aliasing; a chunk is garbage once its last wrapper is.
// Group nodes and groups never leave the index, so they go on free
// lists. The zero value is ready to use.
type alloc struct {
	chunk      []StoredTuple
	freeNodes  *groupNode // chained through anext
	freeGroups *group     // chained through free
}

func (a *alloc) newStored(t *stream.Tuple) *StoredTuple {
	if len(a.chunk) == cap(a.chunk) {
		//pjoin:allow hotpath slab refill: one allocation per storedChunk inserts, amortized to ~0 per tuple (alloc guards pin it)
		a.chunk = make([]StoredTuple, 0, storedChunk)
	}
	a.chunk = append(a.chunk, StoredTuple{T: t, PID: punct.NoPID, DTS: InMemory})
	return &a.chunk[len(a.chunk)-1]
}

func (a *alloc) newNode() *groupNode {
	if n := a.freeNodes; n != nil {
		a.freeNodes = n.anext
		*n = groupNode{}
		return n
	}
	//pjoin:allow hotpath free-list warmup: nodes are allocated once, then recycled via freeNode for the run's lifetime
	return &groupNode{}
}

func (a *alloc) freeNode(n *groupNode) {
	*n = groupNode{anext: a.freeNodes}
	a.freeNodes = n
}

func (a *alloc) newGroup() *group {
	if g := a.freeGroups; g != nil {
		a.freeGroups = g.free
		*g = group{}
		return g
	}
	//pjoin:allow hotpath free-list warmup: groups are allocated once, then recycled via freeGroup for the run's lifetime
	return &group{}
}

func (a *alloc) freeGroup(g *group) {
	*g = group{free: a.freeGroups}
	a.freeGroups = g
}

// groupNode holds one memory-resident tuple in a bucket.
type groupNode struct {
	s            *StoredTuple
	aprev, anext *groupNode // bucket arrival list
	gprev, gnext *groupNode // group chain
	g            *group
}

// group is one join key's chain of memory-resident tuples, in arrival
// order. slot is its current position in the index's slot array
// (maintained by insert and rehash) so emptying a group needs no probe.
type group struct {
	hash       uint64
	key        value.Value
	head, tail *groupNode
	n          int
	slot       int
	free       *group // free-list link
}

// tombstone marks a slot whose group was removed; probes skip it,
// inserts may reuse it.
var tombstone = &group{}

// memIndex is the key-grouped index of one bucket's memory portion.
// The zero value is an empty index.
type memIndex struct {
	slots   []*group
	ngroups int
	tombs   int
	ntuples int

	ahead, atail *groupNode // arrival list ends
}

// lookup returns the group for key (with hash h), or nil.
func (m *memIndex) lookup(key value.Value, h uint64) *group {
	if len(m.slots) == 0 {
		return nil
	}
	mask := uint64(len(m.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		g := m.slots[i]
		if g == nil {
			return nil
		}
		if g != tombstone && g.hash == h && g.key.Equal(key) {
			return g
		}
	}
}

// insert appends s (key key, full hash h) to its group, creating the
// group if needed, and to the arrival list. It reports whether a new
// group was created.
func (m *memIndex) insert(al *alloc, key value.Value, h uint64, s *StoredTuple) bool {
	if (m.ngroups+m.tombs+1)*4 > len(m.slots)*3 {
		m.rehash()
	}
	mask := uint64(len(m.slots) - 1)
	reuse := -1
	var g *group
	for i := h & mask; ; i = (i + 1) & mask {
		c := m.slots[i]
		if c == nil {
			if reuse < 0 {
				reuse = int(i)
			}
			break
		}
		if c == tombstone {
			if reuse < 0 {
				reuse = int(i)
			}
			continue
		}
		if c.hash == h && c.key.Equal(key) {
			g = c
			break
		}
	}
	created := false
	if g == nil {
		g = al.newGroup()
		g.hash, g.key, g.slot = h, key, reuse
		if m.slots[reuse] == tombstone {
			m.tombs--
		}
		m.slots[reuse] = g
		m.ngroups++
		created = true
	}

	n := al.newNode()
	n.s = s
	n.g = g
	// Group chain tail (arrival order within the key).
	n.gprev = g.tail
	if g.tail != nil {
		g.tail.gnext = n
	} else {
		g.head = n
	}
	g.tail = n
	g.n++
	// Arrival list tail (global order).
	n.aprev = m.atail
	if m.atail != nil {
		m.atail.anext = n
	} else {
		m.ahead = n
	}
	m.atail = n
	m.ntuples++
	return created
}

// rehash grows the slot array (or rebuilds at the same size to shed
// tombstones when live groups are sparse).
func (m *memIndex) rehash() {
	size := 8
	if len(m.slots) > 0 {
		size = len(m.slots)
		if m.ngroups*2 >= len(m.slots) {
			size *= 2
		}
	}
	old := m.slots
	//pjoin:allow hotpath table growth doubles, so the rehash allocation amortizes to O(1) per insert
	m.slots = make([]*group, size)
	m.tombs = 0
	mask := uint64(size - 1)
	for _, g := range old {
		if g == nil || g == tombstone {
			continue
		}
		i := g.hash & mask
		for m.slots[i] != nil {
			i = (i + 1) & mask
		}
		m.slots[i] = g
		g.slot = int(i)
	}
}

// unlink removes node n from its group chain and the arrival list,
// freeing the group when it empties. It reports whether the group was
// removed. n itself is NOT freed (callers may still need n.anext; they
// free it).
func (m *memIndex) unlink(al *alloc, n *groupNode) (groupGone bool) {
	g := n.g
	if n.gprev != nil {
		n.gprev.gnext = n.gnext
	} else {
		g.head = n.gnext
	}
	if n.gnext != nil {
		n.gnext.gprev = n.gprev
	} else {
		g.tail = n.gprev
	}
	g.n--
	if n.aprev != nil {
		n.aprev.anext = n.anext
	} else {
		m.ahead = n.anext
	}
	if n.anext != nil {
		n.anext.aprev = n.aprev
	} else {
		m.atail = n.aprev
	}
	m.ntuples--
	if g.n == 0 {
		m.slots[g.slot] = tombstone
		m.tombs++
		m.ngroups--
		al.freeGroup(g)
		return true
	}
	return false
}

// takeGroup removes key's entire group, returning its tuples in arrival
// order (nil if the key has no group).
func (m *memIndex) takeGroup(al *alloc, key value.Value, h uint64) []*StoredTuple {
	g := m.lookup(key, h)
	if g == nil {
		return nil
	}
	out := make([]*StoredTuple, 0, g.n)
	for n := g.head; n != nil; {
		next := n.gnext
		out = append(out, n.s)
		// Unlink from the arrival list; the group chain dies wholesale.
		if n.aprev != nil {
			n.aprev.anext = n.anext
		} else {
			m.ahead = n.anext
		}
		if n.anext != nil {
			n.anext.aprev = n.aprev
		} else {
			m.atail = n.aprev
		}
		al.freeNode(n)
		n = next
	}
	m.ntuples -= len(out)
	m.slots[g.slot] = tombstone
	m.tombs++
	m.ngroups--
	al.freeGroup(g)
	return out
}

// reset empties the index, recycling all nodes and groups but keeping
// the slot array's capacity for the bucket's next life (post-spill).
func (m *memIndex) reset(al *alloc) {
	for n := m.ahead; n != nil; {
		next := n.anext
		al.freeNode(n)
		n = next
	}
	for i, g := range m.slots {
		if g != nil && g != tombstone {
			al.freeGroup(g)
		}
		m.slots[i] = nil
	}
	m.ngroups, m.tombs, m.ntuples = 0, 0, 0
	m.ahead, m.atail = nil, nil
}
