package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pjoin/internal/punct"
	"pjoin/internal/value"
)

// Text stream format: one item per line, blank lines and '#' comments
// ignored.
//
//	t <ts> <v1>, <v2>, ...     data tuple (values in value syntax)
//	p <ts> <pattern, ...>      punctuation (punct syntax)
//	e <ts>                     end of stream
//
// Example:
//
//	# Open stream
//	t 1000 5, "ada", 17.5
//	p 2000 <5, *, *>
//	e 3000
//
// WriteItems emits it; ReadItems parses and validates it against a
// schema. The format exists so workloads can be stored, inspected and
// replayed from plain files.

// WriteItems writes the items in the text stream format.
func WriteItems(w io.Writer, items []Item) error {
	bw := bufio.NewWriter(w)
	for _, it := range items {
		switch it.Kind {
		case KindTuple:
			if _, err := fmt.Fprintf(bw, "t %d ", it.Tuple.Ts); err != nil {
				return err
			}
			for i, v := range it.Tuple.Values {
				if i > 0 {
					if _, err := bw.WriteString(", "); err != nil {
						return err
					}
				}
				if _, err := bw.WriteString(v.String()); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		case KindPunct:
			if _, err := fmt.Fprintf(bw, "p %d %s\n", it.Ts, it.Punct); err != nil {
				return err
			}
		case KindEOS:
			if _, err := fmt.Fprintf(bw, "e %d\n", it.Ts); err != nil {
				return err
			}
		default:
			return fmt.Errorf("stream: write: unknown item kind %v", it.Kind)
		}
	}
	return bw.Flush()
}

// ReadItems parses the text stream format, validating tuples and
// punctuations against the schema. Reading stops at EOF; an EOS line is
// kept as an item but not required.
func ReadItems(r io.Reader, schema *Schema) ([]Item, error) {
	if schema == nil {
		return nil, fmt.Errorf("stream: read: nil schema")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Item
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		tsText, body, _ := strings.Cut(rest, " ")
		ts, err := strconv.ParseInt(tsText, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad timestamp %q", lineNo, tsText)
		}
		body = strings.TrimSpace(body)
		switch kind {
		case "t":
			fields, err := splitValues(body)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
			}
			vals := make([]value.Value, 0, len(fields))
			for _, f := range fields {
				v, err := value.Parse(f)
				if err != nil {
					return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
				}
				vals = append(vals, v)
			}
			t, err := NewTuple(schema, Time(ts), vals...)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
			}
			out = append(out, TupleItem(t))
		case "p":
			p, err := punct.Parse(body)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
			}
			if p.Width() != schema.Width() {
				return nil, fmt.Errorf("stream: line %d: punctuation width %d, schema width %d",
					lineNo, p.Width(), schema.Width())
			}
			out = append(out, PunctItem(p, Time(ts)))
		case "e":
			if body != "" {
				return nil, fmt.Errorf("stream: line %d: trailing data after eos", lineNo)
			}
			out = append(out, EOSItem(Time(ts)))
		default:
			return nil, fmt.Errorf("stream: line %d: unknown item kind %q", lineNo, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: read: %w", err)
	}
	return out, nil
}

// splitValues splits a comma-separated value list, honouring string
// quoting (commas inside quoted strings do not split).
func splitValues(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty tuple body")
	}
	var (
		parts    []string
		start    int
		inString bool
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inString {
			switch c {
			case '\\':
				i++
			case '"':
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			inString = true
		case ',':
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if inString {
		return nil, fmt.Errorf("unterminated string in %q", s)
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("empty value in %q", s)
		}
	}
	return parts, nil
}
