package stream

import (
	"strings"
	"testing"
	"testing/quick"

	"pjoin/internal/punct"
	"pjoin/internal/value"
)

func openSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("Open",
		Field{Name: "item_id", Kind: value.KindInt},
		Field{Name: "seller", Kind: value.KindString},
	)
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name   string
		fields []Field
	}{
		{"no fields", nil},
		{"empty name", []Field{{Name: "", Kind: value.KindInt}}},
		{"invalid kind", []Field{{Name: "x", Kind: value.KindInvalid}}},
		{"duplicate", []Field{{Name: "x", Kind: value.KindInt}, {Name: "x", Kind: value.KindInt}}},
	}
	for _, c := range cases {
		if _, err := NewSchema("s", c.fields...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := openSchema(t)
	if s.Name() != "Open" || s.Width() != 2 {
		t.Fatalf("schema basics broken: %v", s)
	}
	if f := s.FieldAt(1); f.Name != "seller" || f.Kind != value.KindString {
		t.Errorf("FieldAt(1) = %v", f)
	}
	if i := s.MustIndexOf("item_id"); i != 0 {
		t.Errorf("MustIndexOf(item_id) = %d", i)
	}
	if _, err := s.IndexOf("nope"); err == nil {
		t.Error("IndexOf(nope) should error")
	}
	if got := s.String(); !strings.Contains(got, "item_id int") {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaMustIndexOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	openSchema(t).MustIndexOf("nope")
}

func TestSchemaConcat(t *testing.T) {
	open := openSchema(t)
	bid := MustSchema("Bid",
		Field{Name: "item_id", Kind: value.KindInt},
		Field{Name: "bid_increase", Kind: value.KindFloat},
	)
	out, err := open.Concat("Out1", bid)
	if err != nil {
		t.Fatal(err)
	}
	if out.Width() != 4 {
		t.Fatalf("concat width = %d", out.Width())
	}
	// First item_id keeps its name; the colliding one is prefixed.
	if out.FieldAt(0).Name != "item_id" {
		t.Errorf("field 0 = %q", out.FieldAt(0).Name)
	}
	if got := out.FieldAt(2).Name; got != "Bid.item_id" {
		t.Errorf("colliding field = %q, want Bid.item_id", got)
	}
}

func TestNewTupleValidation(t *testing.T) {
	s := openSchema(t)
	if _, err := NewTuple(s, 0, value.Int(1)); err == nil {
		t.Error("width mismatch should error")
	}
	if _, err := NewTuple(s, 0, value.Str("x"), value.Str("y")); err == nil {
		t.Error("kind mismatch should error")
	}
	tu, err := NewTuple(s, 5, value.Int(1), value.Str("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if tu.Ts != 5 || tu.Width() != 2 {
		t.Errorf("tuple = %v", tu)
	}
}

func TestTupleValuesCopied(t *testing.T) {
	s := openSchema(t)
	vals := []value.Value{value.Int(1), value.Str("a")}
	tu := MustTuple(s, 0, vals...)
	vals[0] = value.Int(99)
	if tu.Values[0].IntVal() != 1 {
		t.Error("NewTuple must copy its values")
	}
}

func TestTupleJoin(t *testing.T) {
	open := openSchema(t)
	bid := MustSchema("Bid",
		Field{Name: "item_id", Kind: value.KindInt},
		Field{Name: "amt", Kind: value.KindFloat},
	)
	a := MustTuple(open, 10, value.Int(1), value.Str("alice"))
	b := MustTuple(bid, 20, value.Int(1), value.Float(2.5))
	j := a.Join(b)
	if j.Width() != 4 || j.Ts != 20 {
		t.Errorf("join = %v", j)
	}
	if !j.Values[3].Equal(value.Float(2.5)) {
		t.Errorf("join values wrong: %v", j.Values)
	}
	// Timestamp is the max of both inputs regardless of order.
	if got := b.Join(a).Ts; got != 20 {
		t.Errorf("reverse join ts = %d", got)
	}
}

func TestItems(t *testing.T) {
	s := openSchema(t)
	tu := MustTuple(s, 7, value.Int(1), value.Str("a"))
	it := TupleItem(tu)
	if it.Kind != KindTuple || it.Ts != 7 || it.Tuple != tu {
		t.Errorf("TupleItem = %+v", it)
	}
	p := punct.MustKeyOnly(2, 0, punct.Const(value.Int(1)))
	pi := PunctItem(p, 9)
	if pi.Kind != KindPunct || pi.Ts != 9 || !pi.Punct.Equal(p) {
		t.Errorf("PunctItem = %+v", pi)
	}
	eos := EOSItem(11)
	if eos.Kind != KindEOS || eos.Ts != 11 {
		t.Errorf("EOSItem = %+v", eos)
	}
	for _, i := range []Item{it, pi, eos} {
		if i.String() == "" || strings.Contains(i.String(), "bad") {
			t.Errorf("Item.String() = %q", i.String())
		}
	}
}

func TestItemKindString(t *testing.T) {
	if KindTuple.String() != "tuple" || KindPunct.String() != "punct" || KindEOS.String() != "eos" {
		t.Error("ItemKind names wrong")
	}
	if got := ItemKind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestTimeMillis(t *testing.T) {
	if got := (Time(2_500_000)).Millis(); got != 2.5 {
		t.Errorf("Millis = %g", got)
	}
	if Millisecond != 1e6 {
		t.Errorf("Millisecond = %d", Millisecond)
	}
}

func TestTupleBinaryRoundTrip(t *testing.T) {
	s := MustSchema("mix",
		Field{Name: "a", Kind: value.KindInt},
		Field{Name: "b", Kind: value.KindString},
		Field{Name: "c", Kind: value.KindFloat},
		Field{Name: "d", Kind: value.KindBool},
	)
	tu := MustTuple(s, 1234, value.Int(-9), value.Str("hello"), value.Float(3.5), value.Bool(true))
	enc := tu.AppendBinary(nil)
	if len(enc) != tu.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", tu.EncodedSize(), len(enc))
	}
	got, n, err := DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || got.Ts != tu.Ts || got.Width() != tu.Width() {
		t.Fatalf("decode basics wrong: n=%d ts=%d w=%d", n, got.Ts, got.Width())
	}
	for i := range tu.Values {
		if !got.Values[i].Equal(tu.Values[i]) {
			t.Errorf("value %d: got %v want %v", i, got.Values[i], tu.Values[i])
		}
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	good := MustTuple(openSchema(t), 1, value.Int(1), value.Str("abc")).AppendBinary(nil)
	bad := [][]byte{
		nil,
		{0x80},                      // unterminated uvarint
		good[:3],                    // truncated timestamp
		good[:12],                   // truncated values
		{9, 0, 0, 0, 0, 0, 0, 0, 0}, // claims 9 values, has none
	}
	for i, b := range bad {
		if tu, _, err := DecodeTuple(b); err == nil {
			t.Errorf("case %d: DecodeTuple succeeded: %v", i, tu)
		}
	}
}

func TestDecodeTupleStream(t *testing.T) {
	// Multiple tuples back to back must decode sequentially.
	s := openSchema(t)
	var buf []byte
	for i := int64(0); i < 10; i++ {
		buf = MustTuple(s, Time(i), value.Int(i), value.Str("s")).AppendBinary(buf)
	}
	off, count := 0, 0
	for off < len(buf) {
		tu, n, err := DecodeTuple(buf[off:])
		if err != nil {
			t.Fatalf("tuple %d: %v", count, err)
		}
		if tu.Values[0].IntVal() != int64(count) {
			t.Fatalf("tuple %d out of order: %v", count, tu)
		}
		off += n
		count++
	}
	if count != 10 {
		t.Errorf("decoded %d tuples", count)
	}
}

func TestQuickTupleRoundTrip(t *testing.T) {
	s := MustSchema("q",
		Field{Name: "k", Kind: value.KindInt},
		Field{Name: "p", Kind: value.KindString},
	)
	f := func(k int64, p string, ts int64) bool {
		tu := MustTuple(s, Time(ts), value.Int(k), value.Str(p))
		got, n, err := DecodeTuple(tu.AppendBinary(nil))
		if err != nil || n != tu.EncodedSize() {
			return false
		}
		return got.Ts == tu.Ts && got.Values[0].Equal(tu.Values[0]) && got.Values[1].Equal(tu.Values[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
