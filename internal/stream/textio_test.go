package stream

import (
	"strings"
	"testing"

	"pjoin/internal/punct"
	"pjoin/internal/value"
)

func ioSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("S",
		Field{Name: "k", Kind: value.KindInt},
		Field{Name: "name", Kind: value.KindString},
		Field{Name: "score", Kind: value.KindFloat},
	)
}

func TestTextRoundTrip(t *testing.T) {
	sc := ioSchema(t)
	items := []Item{
		TupleItem(MustTuple(sc, 10, value.Int(1), value.Str("ada, really"), value.Float(1.5))),
		PunctItem(punct.MustKeyOnly(3, 0, punct.Const(value.Int(1))), 20),
		TupleItem(MustTuple(sc, 30, value.Int(2), value.Str(`quote " and \ backslash`), value.Float(-2))),
		PunctItem(punct.MustKeyOnly(3, 0, punct.MustRange(value.Int(2), value.Int(9))), 40),
		PunctItem(punct.MustKeyOnly(3, 0, punct.MustEnum(value.Int(10), value.Int(12))), 50),
		EOSItem(60),
	}
	var b strings.Builder
	if err := WriteItems(&b, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadItems(strings.NewReader(b.String()), sc)
	if err != nil {
		t.Fatalf("%v\ntext was:\n%s", err, b.String())
	}
	if len(got) != len(items) {
		t.Fatalf("items = %d, want %d", len(got), len(items))
	}
	for i := range items {
		w, g := items[i], got[i]
		if w.Kind != g.Kind || w.Ts != g.Ts {
			t.Fatalf("item %d: kind/ts mismatch: %v vs %v", i, g, w)
		}
		switch w.Kind {
		case KindTuple:
			for j := range w.Tuple.Values {
				if !g.Tuple.Values[j].Equal(w.Tuple.Values[j]) {
					t.Errorf("item %d value %d: %v vs %v", i, j, g.Tuple.Values[j], w.Tuple.Values[j])
				}
			}
		case KindPunct:
			if !g.Punct.Equal(w.Punct) {
				t.Errorf("item %d punct: %v vs %v", i, g.Punct, w.Punct)
			}
		}
	}
}

func TestReadItemsCommentsAndBlanks(t *testing.T) {
	sc := ioSchema(t)
	text := `
# a comment

t 5 1, "x", 2.5
   # indented comment
e 9
`
	got, err := ReadItems(strings.NewReader(text), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindTuple || got[1].Kind != KindEOS {
		t.Errorf("parsed %v", got)
	}
}

func TestReadItemsErrors(t *testing.T) {
	sc := ioSchema(t)
	bad := []string{
		"x 1 boo",                    // unknown kind
		"t notanumber 1, \"a\", 2.0", // bad ts
		"t 1 1, \"a\"",               // width mismatch
		"t 1 \"a\", \"b\", 1.0",      // kind mismatch
		"t 1 ",                       // empty body
		"t 1 1,, 2.0",                // empty value
		"t 1 1, \"unterminated, 2.0", // unterminated string
		"p 1 <1, *>",                 // punct width mismatch
		"p 1 garbage",                // bad punct
		"e 1 trailing",               // eos with body
	}
	for _, line := range bad {
		if items, err := ReadItems(strings.NewReader(line), sc); err == nil {
			t.Errorf("line %q parsed: %v", line, items)
		}
	}
	if _, err := ReadItems(strings.NewReader(""), nil); err == nil {
		t.Error("nil schema should error")
	}
}

func TestReadItemsEmptyInput(t *testing.T) {
	got, err := ReadItems(strings.NewReader(""), ioSchema(t))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestWriteItemsFormatIsStable(t *testing.T) {
	sc := ioSchema(t)
	var b strings.Builder
	WriteItems(&b, []Item{
		TupleItem(MustTuple(sc, 7, value.Int(3), value.Str("x"), value.Float(0.5))),
	})
	want := "t 7 3, \"x\", 0.5\n"
	if b.String() != want {
		t.Errorf("format drifted: %q, want %q", b.String(), want)
	}
}
