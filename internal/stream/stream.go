// Package stream defines the data model flowing through operators:
// schemas, tuples, punctuations-as-items, and end-of-stream markers.
// A punctuated stream is a sequence of Items, each either a data Tuple or
// a punctuation promising that no later tuple in the same stream matches
// it (Tucker et al.; PJoin paper §2.2).
package stream

import (
	"fmt"
	"strings"

	"pjoin/internal/punct"
	"pjoin/internal/value"
)

// Time is a stream timestamp in nanoseconds since the start of the run.
// Both the live executor (wall clock) and the simulator (virtual clock)
// produce it.
type Time int64

// Millis returns the timestamp in fractional milliseconds, the unit the
// paper's charts use.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Millisecond is one millisecond of stream time.
const Millisecond Time = 1e6

// Field describes one attribute of a schema.
type Field struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of named, typed attributes. Schemas are
// immutable after construction and shared by every tuple of a stream.
type Schema struct {
	name   string
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema. Field names must be unique and non-empty.
func NewSchema(name string, fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("stream: schema %q needs at least one field", name)
	}
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("stream: schema %q field %d has empty name", name, i)
		}
		if f.Kind == value.KindInvalid {
			return nil, fmt.Errorf("stream: schema %q field %q has invalid kind", name, f.Name)
		}
		if _, dup := idx[f.Name]; dup {
			return nil, fmt.Errorf("stream: schema %q duplicates field %q", name, f.Name)
		}
		idx[f.Name] = i
	}
	fs := make([]Field, len(fields))
	copy(fs, fields)
	return &Schema{name: name, fields: fs, index: idx}, nil
}

// MustSchema is NewSchema that panics on error; for tests and examples.
func MustSchema(name string, fields ...Field) *Schema {
	s, err := NewSchema(name, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the schema's stream name.
func (s *Schema) Name() string { return s.name }

// Width returns the number of attributes.
func (s *Schema) Width() int { return len(s.fields) }

// FieldAt returns the i-th field.
func (s *Schema) FieldAt(i int) Field { return s.fields[i] }

// IndexOf returns the position of the named field, or an error.
func (s *Schema) IndexOf(name string) (int, error) {
	if i, ok := s.index[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("stream: schema %q has no field %q", s.name, name)
}

// MustIndexOf is IndexOf that panics on error.
func (s *Schema) MustIndexOf(name string) int {
	i, err := s.IndexOf(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Concat returns the schema of a join result: the fields of s followed by
// the fields of t, with colliding names prefixed by their stream name.
func (s *Schema) Concat(name string, t *Schema) (*Schema, error) {
	fields := make([]Field, 0, len(s.fields)+len(t.fields))
	seen := make(map[string]bool, cap(fields))
	add := func(owner *Schema, f Field) {
		n := f.Name
		if seen[n] {
			n = owner.name + "." + f.Name
		}
		seen[n] = true
		fields = append(fields, Field{Name: n, Kind: f.Kind})
	}
	for _, f := range s.fields {
		add(s, f)
	}
	for _, f := range t.fields {
		add(t, f)
	}
	return NewSchema(name, fields...)
}

// String renders "name(field kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one data element of a stream: the attribute values plus the
// arrival timestamp assigned when it entered the system. Tuples are
// treated as immutable once emitted.
//
// Span, when non-zero, is a provenance trace ID (internal/obs/span)
// assigned by a source-side sampler; it rides the tuple through state
// residency and into join results, is never encoded by AppendBinary,
// and carries no data semantics — untraced runs leave it zero.
type Tuple struct {
	Values []value.Value
	Ts     Time
	Span   uint64
}

// NewTuple builds a tuple after validating the values against the schema.
func NewTuple(s *Schema, ts Time, vals ...value.Value) (*Tuple, error) {
	if len(vals) != s.Width() {
		return nil, fmt.Errorf("stream: tuple width %d does not fit schema %s", len(vals), s)
	}
	for i, v := range vals {
		if v.Kind() != s.fields[i].Kind {
			return nil, fmt.Errorf("stream: field %q wants %s, got %s",
				s.fields[i].Name, s.fields[i].Kind, v.Kind())
		}
	}
	vs := make([]value.Value, len(vals))
	copy(vs, vals)
	return &Tuple{Values: vs, Ts: ts}, nil
}

// MustTuple is NewTuple that panics on error.
func MustTuple(s *Schema, ts Time, vals ...value.Value) *Tuple {
	t, err := NewTuple(s, ts, vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// Width returns the number of attribute values.
func (t *Tuple) Width() int { return len(t.Values) }

// Join returns the concatenation of t and u as a fresh result tuple whose
// timestamp is the later of the two inputs' timestamps.
func (t *Tuple) Join(u *Tuple) *Tuple {
	vs := make([]value.Value, 0, len(t.Values)+len(u.Values))
	vs = append(vs, t.Values...)
	vs = append(vs, u.Values...)
	ts := t.Ts
	if u.Ts > ts {
		ts = u.Ts
	}
	// A result descends from both inputs; when both are traced the
	// earlier-assigned trace wins so attribution stays deterministic.
	sp := t.Span
	if sp == 0 || (u.Span != 0 && u.Span < sp) {
		sp = u.Span
	}
	return &Tuple{Values: vs, Ts: ts, Span: sp}
}

// String renders "(v1, v2, ...)@ts".
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	fmt.Fprintf(&b, ")@%d", t.Ts)
	return b.String()
}

// ItemKind discriminates stream items.
type ItemKind uint8

// Stream item kinds: a data tuple, a punctuation, or the end-of-stream
// marker (no more items of any kind will follow).
const (
	KindTuple ItemKind = iota
	KindPunct
	KindEOS
)

// String returns the kind's name.
func (k ItemKind) String() string {
	switch k {
	case KindTuple:
		return "tuple"
	case KindPunct:
		return "punct"
	case KindEOS:
		return "eos"
	default:
		return fmt.Sprintf("ItemKind(%d)", uint8(k))
	}
}

// Item is one element of a punctuated stream.
//
// Span, when non-zero on a KindPunct item, is the punctuation's
// provenance trace ID (internal/obs/span): the sharded router stamps
// it before broadcasting so every shard's lifecycle spans group under
// one trace. Tuple provenance rides Tuple.Span instead — an item
// rebuild (executor restamp, merger forward) must preserve both.
type Item struct {
	Kind  ItemKind
	Tuple *Tuple            // set when Kind == KindTuple
	Punct punct.Punctuation // set when Kind == KindPunct
	Ts    Time              // arrival/emission timestamp of the item
	Span  uint64            // punctuation trace ID, 0 when untraced
}

// TupleItem wraps a tuple as a stream item.
func TupleItem(t *Tuple) Item { return Item{Kind: KindTuple, Tuple: t, Ts: t.Ts} }

// PunctItem wraps a punctuation as a stream item.
func PunctItem(p punct.Punctuation, ts Time) Item {
	return Item{Kind: KindPunct, Punct: p, Ts: ts}
}

// EOSItem returns the end-of-stream marker.
func EOSItem(ts Time) Item { return Item{Kind: KindEOS, Ts: ts} }

// String renders the item for logs.
func (it Item) String() string {
	switch it.Kind {
	case KindTuple:
		return it.Tuple.String()
	case KindPunct:
		return fmt.Sprintf("%s@%d", it.Punct, it.Ts)
	case KindEOS:
		return fmt.Sprintf("EOS@%d", it.Ts)
	default:
		return "<bad item>"
	}
}
