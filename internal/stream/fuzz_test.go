package stream

import (
	"strings"
	"testing"

	"pjoin/internal/value"
)

// FuzzDecodeTuple checks the spill decoder never panics and accepted
// tuples re-encode to the consumed bytes.
func FuzzDecodeTuple(f *testing.F) {
	sc := MustSchema("S",
		Field{Name: "a", Kind: value.KindInt},
		Field{Name: "b", Kind: value.KindString},
	)
	f.Add(MustTuple(sc, 9, value.Int(1), value.Str("x")).AppendBinary(nil))
	f.Add([]byte{0x80, 0x80})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		tu, n, err := DecodeTuple(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		// Non-minimal varints are tolerated, so compare semantically.
		re := tu.AppendBinary(nil)
		tu2, n2, err := DecodeTuple(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-encoding does not decode: %v", err)
		}
		if tu2.Ts != tu.Ts || tu2.Width() != tu.Width() {
			t.Fatalf("round trip %v -> %v", tu, tu2)
		}
	})
}

// FuzzReadItems checks the text-format reader never panics; accepted
// inputs round-trip through WriteItems.
func FuzzReadItems(f *testing.F) {
	f.Add("t 1 5, \"x\"\np 2 <5, *>\ne 3\n")
	f.Add("# comment\n\nt 10 -3, \"a, b\"\n")
	f.Add("t x y")
	f.Add("q 1 boom")
	f.Fuzz(func(t *testing.T, s string) {
		sc := MustSchema("S",
			Field{Name: "k", Kind: value.KindInt},
			Field{Name: "p", Kind: value.KindString},
		)
		items, err := ReadItems(strings.NewReader(s), sc)
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteItems(&b, items); err != nil {
			t.Fatalf("accepted items fail to write: %v", err)
		}
		again, err := ReadItems(strings.NewReader(b.String()), sc)
		if err != nil {
			t.Fatalf("written text does not re-parse: %v\n%s", err, b.String())
		}
		if len(again) != len(items) {
			t.Fatalf("round trip count %d -> %d", len(items), len(again))
		}
	})
}
