package stream

import (
	"encoding/binary"
	"fmt"

	"pjoin/internal/value"
)

// AppendBinary appends a compact binary encoding of the tuple to dst:
// uvarint value count, 8-byte little-endian timestamp, then each value in
// the value package's binary format. DecodeTuple reverses it. The spill
// store uses this format for on-disk partitions.
func (t *Tuple) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t.Values)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Ts))
	for _, v := range t.Values {
		dst = v.AppendBinary(dst)
	}
	return dst
}

// EncodedSize returns the number of bytes AppendBinary emits for t. The
// state store uses it as the tuple's memory-accounting size so that
// in-memory and on-disk accounting agree.
func (t *Tuple) EncodedSize() int {
	n := uvarintLen(uint64(len(t.Values))) + 8
	for _, v := range t.Values {
		n += v.EncodedSize()
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeTuple decodes one tuple from the front of b, returning the tuple
// and the number of bytes consumed.
func DecodeTuple(b []byte) (*Tuple, int, error) {
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("stream: decode tuple: bad value count")
	}
	if count > uint64(len(b)) { // each value takes at least one byte
		return nil, 0, fmt.Errorf("stream: decode tuple: implausible value count %d", count)
	}
	off := sz
	if len(b) < off+8 {
		return nil, 0, fmt.Errorf("stream: decode tuple: truncated timestamp")
	}
	ts := Time(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	vals := make([]value.Value, 0, count)
	for i := uint64(0); i < count; i++ {
		v, n, err := value.Decode(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("stream: decode tuple value %d: %w", i, err)
		}
		vals = append(vals, v)
		off += n
	}
	return &Tuple{Values: vals, Ts: ts}, off, nil
}
