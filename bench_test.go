package pjoin

// Repository-level benchmarks. Two groups:
//
//   - BenchmarkFigNN / BenchmarkTable1: one bench per table and figure of
//     the paper's evaluation. Each iteration regenerates the experiment
//     at the quick horizon; `go test -bench 'Fig|Table'` therefore
//     re-derives every chart of the paper (the full-resolution versions
//     are produced by cmd/pjoinbench).
//   - micro benchmarks for the hot paths the cost model prices: memory
//     probes, punctuation set matching, purge scans, tuple encoding, and
//     end-to-end operator throughput.

import (
	"testing"

	"pjoin/internal/bench"
	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/shj"
	"pjoin/internal/sim"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/xjoin"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(bench.RunConfig{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if rep == nil || rep.ID == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig05(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig06(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig07(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig08(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig09(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

func BenchmarkAblationDropFly(b *testing.B) { benchExperiment(b, "abl-dropfly") }
func BenchmarkAblationIndex(b *testing.B)   { benchExperiment(b, "abl-index") }
func BenchmarkAblationPurge(b *testing.B)   { benchExperiment(b, "abl-purge") }
func BenchmarkAblationCompact(b *testing.B) { benchExperiment(b, "abl-compact") }
func BenchmarkExtWindow(b *testing.B)       { benchExperiment(b, "ext-window") }

// --- micro benchmarks ---

func synthTuples(n int, keys int) []stream.Item {
	out := make([]stream.Item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, stream.TupleItem(stream.MustTuple(gen.SchemaA,
			stream.Time(i+1), value.Int(int64(i%keys)), value.Str("payload"))))
	}
	return out
}

// BenchmarkMemoryProbe measures the memory-join hot path: one arrival
// probing a populated opposite state and being inserted.
func BenchmarkMemoryProbe(b *testing.B) {
	sink := op.EmitterFunc(func(stream.Item) error { return nil })
	j, err := core.New(core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB, DisablePurge: true,
	}, sink)
	if err != nil {
		b.Fatal(err)
	}
	// Preload side B with 10k tuples over 1k keys.
	for i, it := range synthTuplesB(10_000, 1_000) {
		if err := j.Process(1, it, stream.Time(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	items := synthTuples(b.N, 1_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i]
		it.Tuple.Ts = stream.Time(20_000 + i)
		if err := j.Process(0, it, it.Tuple.Ts); err != nil {
			b.Fatal(err)
		}
	}
}

func synthTuplesB(n int, keys int) []stream.Item {
	out := make([]stream.Item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, stream.TupleItem(stream.MustTuple(gen.SchemaB,
			stream.Time(i+1), value.Int(int64(i%keys)), value.Str("payload"))))
	}
	return out
}

// BenchmarkPunctSetMatch measures the drop-on-the-fly predicate against
// a large constant-punctuation set (the keyed fast path).
func BenchmarkPunctSetMatch(b *testing.B) {
	set := punct.NewKeyedSet(0, false)
	for k := int64(0); k < 10_000; k++ {
		if _, err := set.Add(punct.MustKeyOnly(2, 0, punct.Const(value.Int(k)))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if set.SetMatchAttr(0, value.Int(int64(i%20_000))) {
			hits++
		}
	}
	if hits == 0 && b.N > 1 {
		b.Fatal("no hits; benchmark is broken")
	}
}

// BenchmarkPurgeScan measures one eager purge over a 10k-tuple state.
func BenchmarkPurgeScan(b *testing.B) {
	sink := op.EmitterFunc(func(stream.Item) error { return nil })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		j, err := core.New(core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}, sink)
		if err != nil {
			b.Fatal(err)
		}
		for k, it := range synthTuplesB(10_000, 1_000) {
			if err := j.Process(1, it, stream.Time(k+1)); err != nil {
				b.Fatal(err)
			}
		}
		p := stream.PunctItem(punct.MustKeyOnly(2, 0,
			punct.MustRange(value.Int(0), value.Int(499))), 20_000)
		b.StartTimer()
		if err := j.Process(0, p, 20_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTupleEncode measures the spill serialisation round trip.
func BenchmarkTupleEncode(b *testing.B) {
	t := stream.MustTuple(gen.SchemaA, 42, value.Int(7), value.Str("some payload text"))
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = t.AppendBinary(buf[:0])
		if _, _, err := stream.DecodeTuple(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// throughput benchmarks: full operator pipelines over the same workload.
func benchJoinThroughput(b *testing.B, mk func(emit op.Emitter) (interface {
	Process(int, stream.Item, stream.Time) error
	Finish(stream.Time) error
}, error)) {
	b.Helper()
	arrs, err := gen.Synthetic(gen.Config{
		Seed: 1, MaxTuples: 20_000,
		A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
		B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
	})
	if err != nil {
		b.Fatal(err)
	}
	sink := op.EmitterFunc(func(stream.Item) error { return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := mk(sink)
		if err != nil {
			b.Fatal(err)
		}
		var last stream.Time
		for _, a := range arrs {
			if err := j.Process(a.Port, a.Item, a.Item.Ts); err != nil {
				b.Fatal(err)
			}
			last = a.Item.Ts
		}
		for port := 0; port < 2; port++ {
			last++
			if err := j.Process(port, stream.EOSItem(last), last); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Finish(last + 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(arrs)*b.N)/b.Elapsed().Seconds(), "items/s")
}

func BenchmarkPJoinThroughput(b *testing.B) {
	benchJoinThroughput(b, func(emit op.Emitter) (interface {
		Process(int, stream.Item, stream.Time) error
		Finish(stream.Time) error
	}, error) {
		return core.New(core.Config{
			SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		}, emit)
	})
}

func BenchmarkXJoinThroughput(b *testing.B) {
	benchJoinThroughput(b, func(emit op.Emitter) (interface {
		Process(int, stream.Item, stream.Time) error
		Finish(stream.Time) error
	}, error) {
		return xjoin.New(xjoin.Config{
			SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		}, emit)
	})
}

func BenchmarkSHJThroughput(b *testing.B) {
	benchJoinThroughput(b, func(emit op.Emitter) (interface {
		Process(int, stream.Item, stream.Time) error
		Finish(stream.Time) error
	}, error) {
		return shj.New(gen.SchemaA, gen.SchemaB, 0, 0, emit)
	})
}

// BenchmarkWindowJoin measures the sliding-window PJoin hot path: every
// arrival expires the out-of-window prefix of its bucket before probing.
func BenchmarkWindowJoin(b *testing.B) {
	sink := op.EmitterFunc(func(stream.Item) error { return nil })
	cfg := core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}
	cfg.Window = 1000 // 1µs window over consecutive-nanosecond arrivals
	j, err := core.New(cfg, sink)
	if err != nil {
		b.Fatal(err)
	}
	itemsA := synthTuples(b.N, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := itemsA[i]
		it.Tuple.Ts = stream.Time(i + 1)
		if err := j.Process(i%2, retype(it, i%2), it.Tuple.Ts); err != nil {
			b.Fatal(err)
		}
	}
}

// retype rebuilds a synthetic tuple against the right side's schema.
func retype(it stream.Item, side int) stream.Item {
	if side == 0 {
		return it
	}
	t := stream.MustTuple(gen.SchemaB, it.Tuple.Ts, it.Tuple.Values...)
	return stream.TupleItem(t)
}

// BenchmarkNaryJoin measures the 3-way join's arrival path.
func BenchmarkNaryJoin(b *testing.B) {
	sink := op.EmitterFunc(func(stream.Item) error { return nil })
	scC := stream.MustSchema("C",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "payload", Kind: value.KindString},
	)
	j, err := core.NewNary(
		[]*stream.Schema{gen.SchemaA, gen.SchemaB, scC},
		[]int{0, 0, 0}, sink)
	if err != nil {
		b.Fatal(err)
	}
	schemas := []*stream.Schema{gen.SchemaA, gen.SchemaB, scC}
	b.ReportAllocs()
	b.ResetTimer()
	// One key per (A, B, C) triple and a punctuation wave behind the
	// arrivals keep the state bounded regardless of b.N — without the
	// purge the cross product grows quadratically across iterations.
	for i := 0; i < b.N; i++ {
		side := i % 3
		key := int64(i / 3)
		t := stream.MustTuple(schemas[side], stream.Time(2*i+1),
			value.Int(key), value.Str("p"))
		if err := j.Process(side, stream.TupleItem(t), t.Ts); err != nil {
			b.Fatal(err)
		}
		if side == 2 {
			p := punct.MustKeyOnly(2, 0, punct.Const(value.Int(key)))
			for s := 0; s < 3; s++ {
				if err := j.Process(s, stream.PunctItem(p, stream.Time(2*i+2)), stream.Time(2*i+2)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSetCompact measures punctuation-set compaction over a large
// run of per-key constants.
func BenchmarkSetCompact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		set := punct.NewKeyedSet(0, false)
		for k := int64(0); k < 2_000; k++ {
			set.Add(punct.MustKeyOnly(2, 0, punct.Const(value.Int(k))))
		}
		b.StartTimer()
		if removed := set.Compact(0); removed != 1_999 {
			b.Fatalf("removed %d", removed)
		}
	}
}

// BenchmarkSimulator measures the simulator's own overhead per arrival.
func BenchmarkSimulator(b *testing.B) {
	arrs, err := gen.Synthetic(gen.Config{
		Seed: 1, MaxTuples: 10_000,
		A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
		B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
	})
	if err != nil {
		b.Fatal(err)
	}
	sink := &op.Collector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		j, err := core.New(core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}, sink)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(j, arrs, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpillRoundTrip measures relocation plus a disk pass.
func BenchmarkSpillRoundTrip(b *testing.B) {
	sink := op.EmitterFunc(func(stream.Item) error { return nil })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB, NumBuckets: 8}
		cfg.Thresholds.MemoryBytes = 32 << 10
		cfg.Thresholds.DiskJoinIdle = 1
		j, err := core.New(cfg, sink)
		if err != nil {
			b.Fatal(err)
		}
		items := synthTuples(5_000, 100)
		b.StartTimer()
		for k, it := range items {
			if err := j.Process(0, it, stream.Time(k+1)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := j.OnIdle(1 << 40); err != nil {
			b.Fatal(err)
		}
	}
}
