package main

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"pjoin/internal/core"
	"pjoin/internal/exec"
	"pjoin/internal/gen"
	"pjoin/internal/obs"
	"pjoin/internal/obs/span"
	"pjoin/internal/stream"
)

// runSmallAuction drives the Fig. 1 join over a small auction workload
// with provenance tracing on (sample rate 1) and returns everything
// the /metrics handler scrapes.
func runSmallAuction(t *testing.T) (*core.PJoin, *obs.Live, *span.JSONL, *span.Sampler) {
	t.Helper()
	arrs, err := gen.Auction(gen.AuctionConfig{
		Seed: 1, Items: 20,
		OpenMean:        2 * stream.Millisecond,
		AuctionLength:   60 * stream.Millisecond,
		BidMean:         4 * stream.Millisecond,
		UniqueOpenPunct: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var open, bids []stream.Item
	for _, a := range arrs {
		if a.Port == gen.AuctionPortOpen {
			open = append(open, a.Item)
		} else {
			bids = append(bids, a.Item)
		}
	}
	live := obs.NewLive(10 * stream.Millisecond)
	spans := span.NewJSONL(io.Discard)
	sampler := span.NewSampler(1)
	p := exec.NewPipeline()
	p.SpanSampler = sampler
	p.Obs = obs.NewInstrSpans(nil, nil, spans, "exec")
	srcOpen, srcBid, joined := p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{
		SchemaA: gen.OpenSchema, SchemaB: gen.BidSchema,
		AttrA: 0, AttrB: 0, OutName: "Out1",
		VerifyPunctuations: true,
		Instr:              obs.NewInstrSpans(nil, live, spans, "join"),
	}
	cfg.Thresholds.Purge = 1
	cfg.Thresholds.PropagateCount = 1
	join, err := core.New(cfg, joined)
	if err != nil {
		t.Fatal(err)
	}
	p.SourceItems(srcOpen, open, false)
	p.SourceItems(srcBid, bids, false)
	if err := p.Spawn(join, srcOpen, srcBid); err != nil {
		t.Fatal(err)
	}
	p.Sink(joined)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return join, live, spans, sampler
}

// TestMetricsEndpointPromFormat scrapes the /metrics handler after a
// run and validates the body against the Prometheus text exposition
// checker shared with internal/obs.
func TestMetricsEndpointPromFormat(t *testing.T) {
	join, live, spans, sampler := runSmallAuction(t)
	if join.Metrics().TuplesOut == 0 {
		t.Fatal("workload produced no results: the scrape would be vacuous")
	}

	rec := httptest.NewRecorder()
	metricsHandler(join, live, spans, sampler)(rec, httptest.NewRequest("GET", "/metrics", nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if err := obs.CheckPromFormat(body); err != nil {
		t.Fatalf("scrape is not valid Prometheus text format: %v\n%s", err, body)
	}
	for _, want := range []string{
		"pjoin_result_latency_ns_count",
		"pjoin_punct_delay_ns_bucket",
		"pjoin_purge_duration_ns_sum",
		"pjoin_join_tuples_out",
		"# TYPE pjoin_span_punct_total counter",
		"# TYPE pjoin_span_sampler_sampled_total counter",
		"# TYPE pjoin_span_sampler_dropped_total counter",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape is missing %s", want)
		}
	}
	// Tracing ran at sample rate 1 over a real workload: the punct and
	// tuple span families and the sampler admit count must be non-zero
	// (the drop family is present but zero at rate 1).
	for _, zeroBad := range []string{
		"pjoin_span_punct_total 0",
		"pjoin_span_tuple_total 0",
		"pjoin_span_sampler_sampled_total 0",
	} {
		if strings.Contains(string(body), zeroBad+"\n") {
			t.Errorf("span family unexpectedly zero: %s", zeroBad)
		}
	}
}

// TestMetricsEndpointNilLive: scraping without a sampler, span tracer
// or gauges (health and tracing off) must still produce a valid
// exposition, with the span families rendered as zeros.
func TestMetricsEndpointNilLive(t *testing.T) {
	join, _, _, _ := runSmallAuction(t)
	rec := httptest.NewRecorder()
	metricsHandler(join, nil, nil, nil)(rec, httptest.NewRequest("GET", "/metrics", nil))
	if err := obs.CheckPromFormat(rec.Body.Bytes()); err != nil {
		t.Fatalf("scrape without sampler invalid: %v", err)
	}
	if !strings.Contains(rec.Body.String(), "pjoin_span_sampler_dropped_total 0") {
		t.Errorf("span families should render as zeros when tracing is off:\n%s", rec.Body.String())
	}
}
