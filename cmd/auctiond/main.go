// Command auctiond runs the paper's running example (§1.1, Fig. 1) as a
// live pipeline: an online-auction workload streams through
// PJoin(Open, Bid) on item_id into a punctuation-aware group-by that
// emits each item's bid total as soon as its auction closes.
//
// Usage:
//
//	auctiond                       # 100 items, as fast as possible
//	auctiond -items 500 -paced    # honour the workload's timestamps
//	auctiond -purge 10            # lazy purge with threshold 10
//	auctiond -paced -http :6060   # expvar gauges, pprof and /metrics
//	auctiond -paced -http :6060 -lag-slo-ms 500 -stall-ms 2000 \
//	         -flight flight.jsonl.gz   # health SLOs + flight recorder
//	auctiond -disk-chunk-kb 64 -spill-cache-mb 4 \
//	         -http :6060              # incremental disk join + spill block
//	                                  # cache (hit-ratio gauges on /metrics)
//	auctiond -batch 256 -batch-linger-ms 1   # batched edge delivery
//	                                  # (punctuations still flush immediately)
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -http server
	"os"
	"time"

	"pjoin/internal/core"
	"pjoin/internal/exec"
	"pjoin/internal/gen"
	"pjoin/internal/obs"
	"pjoin/internal/obs/health"
	"pjoin/internal/obs/span"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// metricsHandler serves the join's latency histograms, live gauges and
// provenance-span counters in Prometheus text exposition format
// (0.0.4). Latencies() snapshots are atomic reads, LastValues() is
// mutex-guarded, and the span counters are mutex/atomic snapshots, so
// scraping is safe while the pipeline runs. spans and sampler may be
// nil (-trace off); the span families then render as zeros.
func metricsHandler(join *core.PJoin, live *obs.Live, spans *span.JSONL, sampler *span.Sampler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		gauges := map[string]float64{}
		if live != nil {
			vals, at := live.LastValues()
			for k, v := range vals {
				gauges[k] = v
			}
			gauges["sampled_at_ms"] = at.Millis()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteProm(w, "pjoin", join.Latencies(), gauges); err != nil {
			log.Printf("auctiond: /metrics: %v", err)
			return
		}
		var counts []int64
		if spans != nil {
			c := spans.Counts()
			counts = c[:]
		}
		if err := obs.WritePromSpans(w, "pjoin", counts, sampler.Sampled(), sampler.Dropped()); err != nil {
			log.Printf("auctiond: /metrics: %v", err)
		}
	}
}

func main() {
	var (
		items    = flag.Int("items", 100, "number of auctions")
		seed     = flag.Uint64("seed", 1, "workload seed")
		paced    = flag.Bool("paced", false, "pace sources by workload timestamps (real time)")
		purge    = flag.Int("purge", 1, "purge threshold (1 = eager)")
		verbose  = flag.Bool("v", false, "print every group row")
		httpAddr = flag.String("http", "", "serve expvar (/debug/vars), pprof (/debug/pprof) and Prometheus /metrics on this address, e.g. :6060")
		lagSLO   = flag.Int64("lag-slo-ms", 0, "fire the health detector when punctuation lag exceeds this many ms (0 disables)")
		stallMs  = flag.Int64("stall-ms", 0, "fire the health detector when no output progress happens for this many ms while input flows (0 disables)")
		flight   = flag.String("flight", "flight.jsonl.gz", "where a firing health detector dumps the flight record (.gz compresses)")
		chunkKB  = flag.Int("disk-chunk-kb", 0, "run disk passes incrementally with this per-step read budget in KiB (0 = blocking)")
		cacheMB  = flag.Int("spill-cache-mb", 0, "wrap the join's spill stores in an LRU block cache of this many MiB (0 = no cache)")
		batchN   = flag.Int("batch", 0, "deliver items to operators in batches of up to this size (<= 1 = per item); punctuations and EOS always flush the batch")
		lingerMs = flag.Int("batch-linger-ms", 0, "bound how long a tuple may wait in an edge buffer before its batch is cut (0 = flush on every emit); only meaningful with -batch > 1")
		tracePth = flag.String("trace", "", "write a provenance span trace (JSONL, .gz compresses) to this path; analyze with pjointrace")
		traceN   = flag.Int("trace-sample", 64, "with -trace, admit one in N tuples into provenance tracing (1 = every tuple); punctuation and disk-pass spans are always recorded")
	)
	flag.Parse()

	arrs, err := gen.Auction(gen.AuctionConfig{
		Seed:            *seed,
		Items:           *items,
		OpenMean:        2 * stream.Millisecond,
		AuctionLength:   60 * stream.Millisecond,
		BidMean:         4 * stream.Millisecond,
		UniqueOpenPunct: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := gen.Validate(arrs); err != nil {
		log.Fatalf("generated workload invalid: %v", err)
	}
	var open, bids []stream.Item
	for _, a := range arrs {
		if a.Port == gen.AuctionPortOpen {
			open = append(open, a.Item)
		} else {
			bids = append(bids, a.Item)
		}
	}
	st := gen.Summarize(arrs)
	fmt.Printf("auctiond: %d items, %d bids, %d punctuations, %.0f ms of stream time\n",
		st.Tuples[0], st.Tuples[1], st.Puncts[0]+st.Puncts[1], st.Span.Millis())

	healthOn := *lagSLO > 0 || *stallMs > 0

	// With -http, the join's live gauges are published through expvar
	// and /metrics: curl the endpoint mid-run (use -paced so the run
	// lasts) to watch state size and punctuation lag move. Timestamps
	// are the executor's wall-clock restamps, so a 10ms sampling tick is
	// real time here. The health watcher polls the same gauges, so it
	// needs the sampler even without -http.
	var live *obs.Live
	if *httpAddr != "" || healthOn {
		live = obs.NewLive(10 * stream.Millisecond)
		expvar.Publish("pjoin", expvar.Func(func() any {
			vals, at := live.LastValues()
			return map[string]any{"sampled_at_ms": at.Millis(), "gauges": vals}
		}))
	}
	// The flight ring keeps the last operator trace events for the dump;
	// it only spends memory when the health detector can fire.
	var ring *obs.Ring
	var tracer obs.Tracer
	if healthOn {
		ring = obs.NewRing(256)
		tracer = ring
	}
	// -trace attaches the provenance span layer: punctuation lifecycles
	// and disk passes are always recorded, tuples through the sampler.
	var spanSink io.WriteCloser
	var spans *span.JSONL
	var sampler *span.Sampler
	if *tracePth != "" {
		var err error
		spanSink, err = obs.CreateSink(*tracePth)
		if err != nil {
			log.Fatalf("auctiond: -trace: %v", err)
		}
		spans = span.NewJSONL(spanSink)
		sampler = span.NewSampler(*traceN)
	}

	p := exec.NewPipeline()
	// Batch settings must be in place before edges are created: an edge's
	// delivery mode is fixed at creation.
	p.BatchSize = *batchN
	p.BatchLinger = time.Duration(*lingerMs) * time.Millisecond
	p.SpanSampler = sampler
	var spTr span.Tracer
	if spans != nil {
		spTr = spans
		// The pipeline handle carries the span tracer so the executor's
		// own provenance (source ingest, edge cuts, driver delivery)
		// lands in the same trace file as the join's.
		p.Obs = obs.NewInstrSpans(nil, nil, spans, "exec")
	}
	srcOpen, srcBid, joined, grouped := p.Edge(), p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{
		SchemaA: gen.OpenSchema, SchemaB: gen.BidSchema,
		AttrA: 0, AttrB: 0, OutName: "Out1",
		VerifyPunctuations: true,
		Instr:              obs.NewInstrSpans(tracer, live, spTr, "join"),
		DiskChunkBytes:     *chunkKB << 10,
	}
	cfg.Thresholds.Purge = *purge
	cfg.Thresholds.PropagateCount = 1
	if *cacheMB > 0 {
		capBytes := int64(*cacheMB) << 20
		spillA := store.NewCachedSpill(store.NewMemSpill(), capBytes)
		spillB := store.NewCachedSpill(store.NewMemSpill(), capBytes)
		cfg.SpillA, cfg.SpillB = spillA, spillB
		if live != nil {
			// Cache behaviour rides the same sampler as the join gauges, so
			// it shows up in expvar, /metrics and the health probe's view.
			merged := func() store.CacheStats {
				a, b := spillA.CacheStats(), spillB.CacheStats()
				return store.CacheStats{
					Hits: a.Hits + b.Hits, Misses: a.Misses + b.Misses,
					Evictions: a.Evictions + b.Evictions,
					Bytes:     a.Bytes + b.Bytes,
				}
			}
			live.Register("join.spill_cache_hit_ratio", func() float64 { return merged().HitRatio() })
			live.Register("join.spill_cache_hits", func() float64 { return float64(merged().Hits) })
			live.Register("join.spill_cache_misses", func() float64 { return float64(merged().Misses) })
			live.Register("join.spill_cache_evictions", func() float64 { return float64(merged().Evictions) })
			live.Register("join.spill_cache_bytes", func() float64 { return float64(merged().Bytes) })
		}
	}
	join, err := core.New(cfg, joined)
	if err != nil {
		log.Fatal(err)
	}
	gb, err := op.NewGroupBy(join.OutSchema(), 0,
		join.OutSchema().MustIndexOf("bid_increase"), op.AggSum, grouped)
	if err != nil {
		log.Fatal(err)
	}
	p.SourceItems(srcOpen, open, *paced)
	p.SourceItems(srcBid, bids, *paced)
	if err := p.Spawn(join, srcOpen, srcBid); err != nil {
		log.Fatal(err)
	}
	if err := p.Spawn(gb, joined); err != nil {
		log.Fatal(err)
	}
	sink := p.Sink(grouped)

	if *httpAddr != "" {
		http.HandleFunc("/metrics", metricsHandler(join, live, spans, sampler))
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				log.Printf("auctiond: http: %v", err)
			}
		}()
		fmt.Printf("serving expvar, pprof and /metrics on %s\n", *httpAddr)
	}

	start := time.Now()
	if healthOn {
		d := health.NewDetector(health.Config{
			StallWindow: stream.Time(*stallMs) * stream.Millisecond,
			LagSLO:      stream.Time(*lagSLO) * stream.Millisecond,
		})
		// The probe reads the sampler's last gauge values, never the
		// operator itself: PJoin's counters belong to its own goroutine,
		// the gauges are published through the mutex-guarded Live.
		p.Watch(d, 50*time.Millisecond, func() health.Progress {
			vals, _ := live.LastValues()
			return health.Progress{
				//pjoin:allow opcontract the health probe compares live wall progress against gauges; it never feeds operators
				Now:       stream.Time(time.Since(start)),
				TuplesIn:  int64(vals["join.tuples_in"]),
				TuplesOut: int64(vals["join.tuples_out"]),
				PunctsOut: int64(vals["join.puncts_out"]),
				PunctLag:  stream.Time(vals["join.punct_lag_ms"] * float64(stream.Millisecond)),
			}
		}, func(r health.Report) {
			log.Printf("auctiond: health: %s", r.String())
			if err := health.DumpToFile(*flight, r, ring, join.Latencies()); err != nil {
				log.Printf("auctiond: flight dump: %v", err)
				return
			}
			log.Printf("auctiond: flight record written to %s", *flight)
		})
	}

	if err := p.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if spans != nil {
		if err := spans.Flush(); err != nil {
			log.Printf("auctiond: trace flush: %v", err)
		}
		if err := spanSink.Close(); err != nil {
			log.Printf("auctiond: trace close: %v", err)
		}
		fmt.Printf("trace:    %d spans (%d tuples sampled, %d passed over) -> %s\n",
			spans.Events(), sampler.Sampled(), sampler.Dropped(), *tracePth)
	}

	if *verbose {
		for _, t := range sink.Tuples() {
			fmt.Printf("  item %4d total %7.1f\n", t.Values[0].IntVal(), t.Values[1].FloatVal())
		}
	}
	m := join.Metrics()
	fmt.Printf("ran in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("join:     results=%d purged=%d dropped-on-fly=%d state-at-end=%d\n",
		m.TuplesOut, m.Purged, m.DroppedOnFly, join.StateTuples())
	fmt.Printf("group-by: %d rows (%d emitted early), %d punctuations forwarded\n",
		len(sink.Tuples()), gb.EarlyEmitted(), len(sink.Puncts()))
}
