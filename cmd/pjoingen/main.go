// Command pjoingen generates punctuated stream workloads as plain text
// files (see internal/stream's text format) and can replay a pair of
// stream files through PJoin.
//
// Usage:
//
//	pjoingen -kind synthetic -duration-ms 5000 -punct-a 10 -punct-b 40 \
//	         -out-a a.stream -out-b b.stream
//	pjoingen -kind auction -items 200 -out-a open.stream -out-b bid.stream
//	pjoingen -replay -in-a a.stream -in-b b.stream -purge 10
//
// Replay reads the two files, validates honesty, runs PJoin (synthetic
// schemas: k int, payload string / auction schemas auto-detected by
// width) and prints the result statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

func main() {
	var (
		kind  = flag.String("kind", "synthetic", "workload kind: synthetic | auction")
		seed  = flag.Uint64("seed", 1, "workload seed")
		durMs = flag.Int64("duration-ms", 5_000, "synthetic: virtual duration in ms")
		pa    = flag.Float64("punct-a", 10, "synthetic: stream A punctuation inter-arrival (tuples)")
		pb    = flag.Float64("punct-b", 10, "synthetic: stream B punctuation inter-arrival (tuples)")
		items = flag.Int("items", 100, "auction: number of items")
		outA  = flag.String("out-a", "a.stream", "output file for stream A / Open")
		outB  = flag.String("out-b", "b.stream", "output file for stream B / Bid")

		replay = flag.Bool("replay", false, "replay two stream files through PJoin")
		inA    = flag.String("in-a", "", "replay: stream A file")
		inB    = flag.String("in-b", "", "replay: stream B file")
		purge  = flag.Int("purge", 1, "replay: purge threshold")
	)
	flag.Parse()

	if *replay {
		if err := runReplay(*inA, *inB, *purge); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		arrs []gen.Arrival
		err  error
	)
	switch *kind {
	case "synthetic":
		arrs, err = gen.Synthetic(gen.Config{
			Seed:     *seed,
			Duration: stream.Time(*durMs) * stream.Millisecond,
			A:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: *pa},
			B:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: *pb},
		})
	case "auction":
		arrs, err = gen.Auction(gen.AuctionConfig{
			Seed:            *seed,
			Items:           *items,
			OpenMean:        2 * stream.Millisecond,
			AuctionLength:   60 * stream.Millisecond,
			BidMean:         4 * stream.Millisecond,
			UniqueOpenPunct: true,
		})
	default:
		log.Fatalf("pjoingen: unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := gen.Validate(arrs); err != nil {
		log.Fatalf("generated workload failed validation: %v", err)
	}

	// Header: a comment line (skipped by stream.ReadItems) recording the
	// exact generation parameters, so a stream file on disk names the
	// seed that regenerates it.
	header := fmt.Sprintf("# pjoingen kind=%s seed=%d", *kind, *seed)
	switch *kind {
	case "synthetic":
		header += fmt.Sprintf(" duration-ms=%d punct-a=%g punct-b=%g", *durMs, *pa, *pb)
	case "auction":
		header += fmt.Sprintf(" items=%d", *items)
	}

	var sides [2][]stream.Item
	for _, a := range arrs {
		sides[a.Port] = append(sides[a.Port], a.Item)
	}
	for i, path := range []string{*outA, *outB} {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fmt.Fprintf(f, "%s side=%s\n", header, []string{"a", "b"}[i]); err != nil {
			log.Fatal(err)
		}
		if err := stream.WriteItems(f, sides[i]); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	st := gen.Summarize(arrs)
	fmt.Printf("wrote %s (%d tuples, %d puncts) and %s (%d tuples, %d puncts)\n",
		*outA, st.Tuples[0], st.Puncts[0], *outB, st.Tuples[1], st.Puncts[1])
}

// runReplay loads two stream files and runs PJoin over their merged
// timeline. Schemas are chosen by probing the files against the known
// workload schemas (synthetic first, then auction).
func runReplay(pathA, pathB string, purge int) error {
	if pathA == "" || pathB == "" {
		return fmt.Errorf("pjoingen: -replay needs -in-a and -in-b")
	}
	load := func(path string) ([]stream.Item, *stream.Schema, error) {
		for _, sc := range []*stream.Schema{gen.SchemaA, gen.SchemaB, gen.OpenSchema, gen.BidSchema} {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			items, err := stream.ReadItems(f, sc)
			f.Close()
			if err == nil {
				return items, sc, nil
			}
		}
		return nil, nil, fmt.Errorf("pjoingen: %s matches no known schema", path)
	}
	itemsA, scA, err := load(pathA)
	if err != nil {
		return err
	}
	itemsB, scB, err := load(pathB)
	if err != nil {
		return err
	}

	sink := &op.Collector{}
	cfg := core.Config{
		SchemaA: scA, SchemaB: scB,
		AttrA: 0, AttrB: 0,
		VerifyPunctuations: true,
	}
	cfg.Thresholds.Purge = purge
	j, err := core.New(cfg, sink)
	if err != nil {
		return err
	}

	// Merge the two files by timestamp, restamping to keep timestamps
	// strictly increasing across ports.
	var last stream.Time
	restamp := func(it stream.Item) stream.Item {
		ts := it.Ts
		if ts <= last {
			ts = last + 1
		}
		last = ts
		switch it.Kind {
		case stream.KindTuple:
			t := *it.Tuple
			t.Ts = ts
			return stream.TupleItem(&t)
		case stream.KindPunct:
			return stream.PunctItem(it.Punct, ts)
		default:
			return stream.EOSItem(ts)
		}
	}
	ia, ib := 0, 0
	maxState := 0
	feed := func(port int, it stream.Item) error {
		it = restamp(it)
		if err := j.Process(port, it, it.Ts); err != nil {
			return err
		}
		if s := j.StateTuples(); s > maxState {
			maxState = s
		}
		return nil
	}
	for ia < len(itemsA) || ib < len(itemsB) {
		switch {
		case ib >= len(itemsB), ia < len(itemsA) && itemsA[ia].Ts <= itemsB[ib].Ts:
			if err := feed(0, itemsA[ia]); err != nil {
				return err
			}
			ia++
		default:
			if err := feed(1, itemsB[ib]); err != nil {
				return err
			}
			ib++
		}
	}
	for port, items := range [][]stream.Item{itemsA, itemsB} {
		if len(items) == 0 || items[len(items)-1].Kind != stream.KindEOS {
			if err := feed(port, stream.EOSItem(last+1)); err != nil {
				return err
			}
		}
	}
	if err := j.Finish(last + 1); err != nil {
		return err
	}
	m := j.Metrics()
	fmt.Printf("replayed %d + %d items through PJoin-%d\n", len(itemsA), len(itemsB), purge)
	fmt.Printf("results=%d puncts-out=%d purged=%d dropped-on-fly=%d\n",
		m.TuplesOut, m.PunctsOut, m.Purged, m.DroppedOnFly)
	fmt.Printf("max state=%d tuples, final state=%d\n", maxState, j.StateTuples())
	return nil
}
