// Command pjoinlint is the repo's static-invariant multichecker: it
// runs the internal/lint analyzer suite (hotpath, opcontract,
// poolsafe, spanpair, locksafe) over the tree and fails if any
// diagnostic is not covered by a justified //pjoin:allow suppression.
//
// Usage:
//
//	pjoinlint [-json] [-v] [-list] [packages...]
//
// With no package patterns it checks ./... from the current directory.
// -json writes the full diagnostic set (including suppressions and
// their reasons) to stdout for CI artifacts; -v prints suppressed
// findings alongside the gating ones; -list describes the analyzers.
//
// Exit status is 0 when the tree is clean, 1 when unsuppressed
// diagnostics exist, 2 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pjoin/internal/lint"
	"pjoin/internal/lint/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (includes suppressed findings)")
	verbose := flag.Bool("v", false, "also print suppressed findings with their reasons")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pjoinlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pjoinlint:", err)
		os.Exit(2)
	}
	unsuppressed := analysis.Unsuppressed(diags)

	if *jsonOut {
		report := struct {
			Diagnostics  []analysis.Diagnostic `json:"diagnostics"`
			Unsuppressed int                   `json:"unsuppressed"`
		}{diags, len(unsuppressed)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "pjoinlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			switch {
			case !d.Suppressed:
				fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			case *verbose:
				fmt.Printf("%s: %s: %s (suppressed: %s)\n", d.Pos, d.Analyzer, d.Message, d.Reason)
			}
		}
	}
	if len(unsuppressed) > 0 {
		fmt.Fprintf(os.Stderr, "pjoinlint: %d unsuppressed diagnostic(s)\n", len(unsuppressed))
		os.Exit(1)
	}
}
