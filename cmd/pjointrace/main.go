// Command pjointrace is the offline analyzer for span traces written
// by the provenance layer (internal/obs/span). It reads one or more
// JSONL trace files — gzip-compressed and/or truncated mid-trailer
// (crashed runs) are fine — splits span lines from obs event lines
// sharing the stream, reconstructs every punctuation lifecycle, sampled
// tuple path and disk pass, and prints:
//
//   - a per-punctuation report: state reclaimed (memory/disk/on-the-fly,
//     tuples and bytes), purge wall time (deduplicated across the spans
//     of one purge run), deferral reasons, and the propagation-delay
//     distribution;
//   - a critical-path summary for sampled tuples: batch linger, queue +
//     restamp delay, probe work, and result latency;
//   - a disk-pass summary: chunked vs blocking, candidate pairs,
//     spill/cache I/O;
//   - with -flight, a stall root-cause table cross-referencing a
//     flight-recorder dump (internal/obs/health): which passes were in
//     flight, which punctuations were unpropagated, and how much purge
//     work fell inside the stall window;
//   - lifecycle hygiene: orphaned (no arrive) and unclosed (no
//     emit/eos_close) punctuation traces, and incomplete pass traces.
//
// Usage:
//
//	pjointrace trace.jsonl.gz
//	pjointrace -flight flight.jsonl.gz -top 5 trace.jsonl
//	pjointrace -strict trace.jsonl   # exit 2 on orphans/unclosed traces
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pjoin/internal/obs"
	"pjoin/internal/obs/span"
	"pjoin/internal/stream"
)

func main() {
	var (
		flight = flag.String("flight", "", "flight-recorder dump (internal/obs/health) to cross-reference for stall root causes")
		top    = flag.Int("top", 10, "rows in the top-punctuations table")
		strict = flag.Bool("strict", false, "exit 2 if any lifecycle is orphaned, unclosed or incomplete")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pjointrace [-flight dump.jsonl] [-top N] [-strict] trace.jsonl[.gz] ...")
		os.Exit(1)
	}
	problems, err := analyze(os.Stdout, flag.Args(), *flight, *top)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pjointrace: %v\n", err)
		os.Exit(1)
	}
	if *strict && problems > 0 {
		fmt.Fprintf(os.Stderr, "pjointrace: %d lifecycle problem(s)\n", problems)
		os.Exit(2)
	}
}

// punctLife is one reconstructed punctuation lifecycle.
type punctLife struct {
	trace     uint64
	op        string
	pid       int64
	arrives   int
	arriveAt  stream.Time
	lastAt    stream.Time
	memFreed  int64 // punct_purge_mem N
	parked    int64 // punct_purge_mem M + punct_drop_fly M
	diskFreed int64 // punct_purge_disk N
	flyFreed  int64 // punct_drop_fly N
	bytes     int64 // B over all purge/drop spans
	purgeWall int64 // deduplicated purge-run wall ns
	runs      map[purgeRun]struct{}
	defers    int
	deferDisk int // reason 1: a disk pass in flight
	deferOwn  int // reason 2: own disk purge pending
	emitted   bool
	eosClosed bool
	emitDelay int64 // join-wide emit D (stream-time propagation delay)
	orphan    bool  // punct spans but no arrive
}

// purgeRun identifies one purge run; its spans (one per attributed
// punctuation) share a wall duration that must be counted once.
type purgeRun struct {
	at    stream.Time
	shard int32
	side  int8
	d     int64
}

// tupleLife is one sampled tuple's reconstructed path.
type tupleLife struct {
	trace                      uint64
	hasIngest, hasCut, hasDel  bool
	ingestAt, cutAt, deliverAt stream.Time
	batchLen                   int64
	forcedCut                  bool
	restampNs                  int64 // deliver D: queue + batch linger
	probes                     int
	matches, examined          int64
	results                    int
	resultLat                  []int64
}

// passLife is one disk-join pass.
type passLife struct {
	trace              uint64
	started, ended     bool
	chunked            bool
	startAt, endAt     stream.Time
	chunks             int
	examined, results  int64
	readOps, cacheHits int64
	bytes              int64
	wall               int64
}

// timedEvent is a purge run or deferral pinned to the virtual clock,
// kept globally for the stall-window correlation.
type timedEvent struct {
	at     stream.Time
	n, b   int64
	wall   int64
	reason int64
}

type analysis struct {
	files     int
	spans     int64
	skipped   int64
	kinds     []int64
	puncts    map[uint64]*punctLife
	tuples    map[uint64]*tupleLife
	passes    map[uint64]*passLife
	purgeRuns map[purgeRun]*timedEvent
	deferList []timedEvent
	traceless int64
}

func newAnalysis() *analysis {
	return &analysis{
		kinds:     make([]int64, span.NumKinds()),
		puncts:    map[uint64]*punctLife{},
		tuples:    map[uint64]*tupleLife{},
		passes:    map[uint64]*passLife{},
		purgeRuns: map[purgeRun]*timedEvent{},
	}
}

func (a *analysis) punct(s span.Span) *punctLife {
	p := a.puncts[s.Trace]
	if p == nil {
		p = &punctLife{trace: s.Trace, arriveAt: s.At, runs: map[purgeRun]struct{}{}}
		a.puncts[s.Trace] = p
	}
	if s.Op != "" && p.op == "" {
		p.op = s.Op
	}
	if s.At > p.lastAt {
		p.lastAt = s.At
	}
	return p
}

func (a *analysis) add(s span.Span) {
	a.spans++
	a.kinds[s.Kind]++
	if s.Trace == 0 {
		a.traceless++
		return
	}
	switch s.Kind {
	case span.KindPunctArrive:
		p := a.punct(s)
		if p.arrives == 0 || s.At < p.arriveAt {
			p.arriveAt = s.At
		}
		p.arrives++
		if s.N > p.pid {
			p.pid = s.N
		}
	case span.KindPunctPurgeMem:
		p := a.punct(s)
		p.memFreed += s.N
		p.parked += s.M
		p.bytes += s.B
		run := purgeRun{at: s.At, shard: s.Shard, side: s.Side, d: s.D}
		if _, seen := p.runs[run]; !seen {
			p.runs[run] = struct{}{}
			p.purgeWall += s.D
		}
		if g := a.purgeRuns[run]; g != nil {
			g.n += s.N
			g.b += s.B
		} else {
			a.purgeRuns[run] = &timedEvent{at: s.At, n: s.N, b: s.B, wall: s.D}
		}
	case span.KindPunctDropFly:
		p := a.punct(s)
		p.flyFreed += s.N
		p.parked += s.M
		p.bytes += s.B
	case span.KindPunctPurgeDisk:
		p := a.punct(s)
		p.diskFreed += s.N
		p.bytes += s.B
	case span.KindPunctDefer:
		p := a.punct(s)
		p.defers++
		switch s.M {
		case 1:
			p.deferDisk++
		case 2:
			p.deferOwn++
		}
		a.deferList = append(a.deferList, timedEvent{at: s.At, reason: s.M})
	case span.KindPunctEmit:
		p := a.punct(s)
		p.emitted = true
		if s.Shard < 0 && s.D > p.emitDelay {
			p.emitDelay = s.D
		}
	case span.KindPunctEOSClose:
		a.punct(s).eosClosed = true

	case span.KindPassStart:
		ps := a.pass(s)
		ps.started, ps.chunked, ps.startAt = true, s.N == 1, s.At
	case span.KindPassChunk:
		ps := a.pass(s)
		ps.chunks++
	case span.KindPassIO:
		ps := a.pass(s)
		ps.readOps += s.N
		ps.cacheHits += s.M
	case span.KindPassEnd:
		ps := a.pass(s)
		ps.ended, ps.endAt = true, s.At
		ps.examined, ps.results, ps.bytes, ps.wall = s.N, s.M, s.B, s.D

	case span.KindTupleIngest:
		t := a.tuple(s)
		t.hasIngest, t.ingestAt = true, s.At
	case span.KindTupleCut:
		t := a.tuple(s)
		if !t.hasCut {
			t.hasCut, t.cutAt, t.batchLen, t.forcedCut = true, s.At, s.N, s.M != 0
		}
	case span.KindTupleDeliver:
		t := a.tuple(s)
		if !t.hasDel {
			t.hasDel, t.deliverAt, t.restampNs = true, s.At, s.D
		}
	case span.KindTupleProbe:
		t := a.tuple(s)
		t.probes++
		t.matches += s.N
		t.examined += s.M
	case span.KindTupleResult:
		t := a.tuple(s)
		t.results++
		t.resultLat = append(t.resultLat, s.D)
	}
}

func (a *analysis) pass(s span.Span) *passLife {
	p := a.passes[s.Trace]
	if p == nil {
		p = &passLife{trace: s.Trace}
		a.passes[s.Trace] = p
	}
	return p
}

func (a *analysis) tuple(s span.Span) *tupleLife {
	t := a.tuples[s.Trace]
	if t == nil {
		t = &tupleLife{trace: s.Trace}
		a.tuples[s.Trace] = t
	}
	return t
}

func (a *analysis) readFile(path string) error {
	r, err := obs.OpenSinkTolerant(path)
	if err != nil {
		return err
	}
	defer r.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		s, ok, err := span.ParseLine(sc.Bytes())
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if !ok {
			if len(strings.TrimSpace(sc.Text())) > 0 {
				a.skipped++
			}
			continue
		}
		a.add(s)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	a.files++
	return nil
}

// flightDump is the decoded header + histogram summaries of a
// flight-recorder bundle (internal/obs/health Dump format).
type flightDump struct {
	Reason    string `json:"reason"`
	AtNs      int64  `json:"at_ns"`
	WindowNs  int64  `json:"window_ns"`
	LagNs     int64  `json:"lag_ns"`
	TuplesIn  int64  `json:"tuples_in"`
	TuplesOut int64  `json:"tuples_out"`
	PunctsOut int64  `json:"puncts_out"`
	Events    int    `json:"events"`

	hists []flightHist
	ring  int
}

type flightHist struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

func readFlight(path string) (*flightDump, error) {
	r, err := obs.OpenSinkTolerant(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var d *flightDump
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, `{"type":"flight"`):
			d = &flightDump{}
			if err := json.Unmarshal([]byte(line), d); err != nil {
				return nil, fmt.Errorf("%s: flight header: %w", path, err)
			}
		case strings.HasPrefix(line, `{"type":"hist"`):
			if d == nil {
				continue
			}
			var h flightHist
			if err := json.Unmarshal([]byte(line), &h); err != nil {
				return nil, fmt.Errorf("%s: hist line: %w", path, err)
			}
			d.hists = append(d.hists, h)
		case strings.HasPrefix(line, `{"ev":`):
			if d != nil {
				d.ring++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d == nil {
		return nil, fmt.Errorf("%s: no flight header line", path)
	}
	return d, nil
}

// fmtMs renders a nanosecond quantity (virtual or wall) as
// milliseconds. Deterministic: all inputs come from the trace.
func fmtMs(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// dist is a sorted-sample summary: p50/p95/max over exact values.
type dist struct{ vs []int64 }

func (d *dist) add(v int64) { d.vs = append(d.vs, v) }
func (d *dist) count() int  { return len(d.vs) }
func (d *dist) q(p int) int64 {
	if len(d.vs) == 0 {
		return 0
	}
	sort.Slice(d.vs, func(i, j int) bool { return d.vs[i] < d.vs[j] })
	return d.vs[(len(d.vs)-1)*p/100]
}
func (d *dist) String() string {
	if len(d.vs) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("p50 %s  p95 %s  max %s", fmtMs(d.q(50)), fmtMs(d.q(95)), fmtMs(d.q(100)))
}

func analyze(w io.Writer, paths []string, flightPath string, top int) (problems int, err error) {
	a := newAnalysis()
	for _, p := range paths {
		if err := a.readFile(p); err != nil {
			return 0, err
		}
	}
	var fd *flightDump
	if flightPath != "" {
		if fd, err = readFlight(flightPath); err != nil {
			return 0, err
		}
	}

	var punctSpans, passSpans, tupleSpans int64
	for k := 0; k < span.NumKinds(); k++ {
		switch {
		case span.Kind(k).IsPunct():
			punctSpans += a.kinds[k]
		case span.Kind(k).IsPass():
			passSpans += a.kinds[k]
		default:
			tupleSpans += a.kinds[k]
		}
	}
	fmt.Fprintf(w, "pjointrace: %d file(s): %d spans (punct %d, pass %d, tuple %d), %d foreign line(s) skipped\n",
		a.files, a.spans, punctSpans, passSpans, tupleSpans, a.skipped)

	// --- punctuation lifecycles -------------------------------------
	lives := make([]*punctLife, 0, len(a.puncts))
	for _, p := range a.puncts {
		p.orphan = p.arrives == 0
		lives = append(lives, p)
	}
	sort.Slice(lives, func(i, j int) bool {
		if lives[i].arriveAt != lives[j].arriveAt {
			return lives[i].arriveAt < lives[j].arriveAt
		}
		return lives[i].trace < lives[j].trace
	})
	var (
		emitted, eosClosed, unclosed, orphans                   int
		memFreed, parked, diskFreed, flyFreed, bytes, purgeWall int64
		totalRuns, defers, deferDisk, deferOwn                  int
		delay                                                   dist
	)
	for _, p := range lives {
		switch {
		case p.orphan:
			orphans++
		case p.emitted:
			emitted++
		case p.eosClosed:
			eosClosed++
		default:
			unclosed++
		}
		memFreed += p.memFreed
		parked += p.parked
		diskFreed += p.diskFreed
		flyFreed += p.flyFreed
		bytes += p.bytes
		purgeWall += p.purgeWall
		totalRuns += len(p.runs)
		defers += p.defers
		deferDisk += p.deferDisk
		deferOwn += p.deferOwn
		if p.emitted && p.emitDelay > 0 {
			delay.add(p.emitDelay)
		}
	}
	fmt.Fprintf(w, "\n== punctuation lifecycles ==\n")
	fmt.Fprintf(w, " traces %d: emitted %d, eos-closed %d, unclosed %d, orphaned %d\n",
		len(lives), emitted, eosClosed, unclosed, orphans)
	fmt.Fprintf(w, " reclaimed: memory %d tuples, disk %d tuples, on-the-fly %d tuples, %s total; %d parked for disk purge\n",
		memFreed, diskFreed, flyFreed, fmtBytes(bytes), parked)
	fmt.Fprintf(w, " purge wall: %s over %d run(s)\n", fmtMs(purgeWall), totalRuns)
	fmt.Fprintf(w, " propagation delay (%d join-wide emits): %s\n", delay.count(), delay.String())
	fmt.Fprintf(w, " deferrals: %d (disk pass in flight %d, own disk purge pending %d)\n",
		defers, deferDisk, deferOwn)

	byBytes := append([]*punctLife(nil), lives...)
	sort.Slice(byBytes, func(i, j int) bool {
		if byBytes[i].bytes != byBytes[j].bytes {
			return byBytes[i].bytes > byBytes[j].bytes
		}
		return byBytes[i].trace < byBytes[j].trace
	})
	if top > len(byBytes) {
		top = len(byBytes)
	}
	if top > 0 {
		fmt.Fprintf(w, "\n top %d by bytes reclaimed:\n", top)
		fmt.Fprintf(w, "  %-8s %-7s %-4s %-10s %-10s %-10s %5s %5s %4s %5s %9s %10s %10s\n",
			"trace", "op", "pid", "arrive", "end", "status", "mem", "disk", "fly", "park", "bytes", "purge-wall", "delay")
		for _, p := range byBytes[:top] {
			status := "unclosed"
			switch {
			case p.orphan:
				status = "ORPHAN"
			case p.emitted:
				status = "emitted"
			case p.eosClosed:
				status = "eos-closed"
			}
			delayS := "-"
			if p.emitted && p.emitDelay > 0 {
				delayS = fmtMs(p.emitDelay)
			}
			fmt.Fprintf(w, "  %-8d %-7s %-4d %-10s %-10s %-10s %5d %5d %4d %5d %9s %10s %10s\n",
				p.trace, p.op, p.pid, fmtMs(int64(p.arriveAt)), fmtMs(int64(p.lastAt)), status,
				p.memFreed, p.diskFreed, p.flyFreed, p.parked, fmtBytes(p.bytes),
				fmtMs(p.purgeWall), delayS)
		}
	}
	for _, p := range lives {
		if p.orphan {
			fmt.Fprintf(w, " ORPHAN: trace %d has punctuation spans but no arrive span (first seen %s)\n",
				p.trace, fmtMs(int64(p.arriveAt)))
		} else if !p.emitted && !p.eosClosed {
			fmt.Fprintf(w, " UNCLOSED: trace %d arrived %s, last span %s, never emitted or eos-closed\n",
				p.trace, fmtMs(int64(p.arriveAt)), fmtMs(int64(p.lastAt)))
		}
	}
	problems += orphans + unclosed

	// --- sampled tuples ---------------------------------------------
	tls := make([]*tupleLife, 0, len(a.tuples))
	for _, t := range a.tuples {
		tls = append(tls, t)
	}
	sort.Slice(tls, func(i, j int) bool { return tls[i].trace < tls[j].trace })
	var (
		linger, restamp, resLat        dist
		forced, fills                  int
		matches, examined, batchLenSum int64
		results, withCut               int
	)
	for _, t := range tls {
		if t.hasIngest && t.hasCut {
			linger.add(int64(t.cutAt) - int64(t.ingestAt))
			withCut++
			batchLenSum += t.batchLen
			if t.forcedCut {
				forced++
			} else {
				fills++
			}
		}
		if t.hasDel {
			restamp.add(t.restampNs)
		}
		matches += t.matches
		examined += t.examined
		results += t.results
		for _, d := range t.resultLat {
			resLat.add(d)
		}
	}
	fmt.Fprintf(w, "\n== sampled tuples ==\n")
	fmt.Fprintf(w, " traces %d, results %d\n", len(tls), results)
	if len(tls) > 0 {
		if withCut > 0 {
			fmt.Fprintf(w, " batch: mean fill %.1f, cuts forced %d / filled %d\n",
				float64(batchLenSum)/float64(withCut), forced, fills)
			fmt.Fprintf(w, " linger (ingest->cut):      %s\n", linger.String())
		}
		fmt.Fprintf(w, " queue+linger (restamp):    %s\n", restamp.String())
		if matches > 0 || examined > 0 {
			denom := float64(len(tls))
			fmt.Fprintf(w, " probe work: %.1f matches, %.1f examined per sampled tuple\n",
				float64(matches)/denom, float64(examined)/denom)
		}
		fmt.Fprintf(w, " result latency:            %s\n", resLat.String())
	}

	// --- disk passes ------------------------------------------------
	pls := make([]*passLife, 0, len(a.passes))
	for _, p := range a.passes {
		pls = append(pls, p)
	}
	sort.Slice(pls, func(i, j int) bool { return pls[i].trace < pls[j].trace })
	var (
		chunked, blocking, chunks, incomplete        int
		pExamined, pResults, readOps, cacheHits, ioB int64
		passWall                                     dist
	)
	for _, p := range pls {
		if !p.started || !p.ended {
			incomplete++
			continue
		}
		if p.chunked {
			chunked++
		} else {
			blocking++
		}
		chunks += p.chunks
		pExamined += p.examined
		pResults += p.results
		readOps += p.readOps
		cacheHits += p.cacheHits
		ioB += p.bytes
		passWall.add(p.wall)
	}
	fmt.Fprintf(w, "\n== disk passes ==\n")
	fmt.Fprintf(w, " passes %d (chunked %d, blocking %d, incomplete %d), %d chunk step(s)\n",
		len(pls), chunked, blocking, incomplete, chunks)
	if chunked+blocking > 0 {
		fmt.Fprintf(w, " examined %d candidate pair(s), %d result(s); %d read op(s), %d cache hit(s), %s read\n",
			pExamined, pResults, readOps, cacheHits, fmtBytes(ioB))
		fmt.Fprintf(w, " pass wall: %s\n", passWall.String())
	}
	problems += incomplete

	if a.traceless > 0 {
		fmt.Fprintf(w, "\n %d TRACELESS span(s): records that cannot be attributed to any lifecycle\n", a.traceless)
		problems += int(a.traceless)
	}

	// --- stall root cause -------------------------------------------
	if fd != nil {
		winStart := stream.Time(fd.AtNs - fd.WindowNs)
		at := stream.Time(fd.AtNs)
		fmt.Fprintf(w, "\n== stall root cause (flight: reason=%s at=%s lag=%s window=[%s, %s]) ==\n",
			fd.Reason, fmtMs(fd.AtNs), fmtMs(fd.LagNs), fmtMs(int64(winStart)), fmtMs(fd.AtNs))
		fmt.Fprintf(w, " recorder: tuples in %d / out %d, puncts out %d, %d ring event(s)\n",
			fd.TuplesIn, fd.TuplesOut, fd.PunctsOut, fd.ring)

		openPasses := 0
		for _, p := range pls {
			if p.started && p.startAt <= at && (!p.ended || p.endAt >= winStart) {
				state := "completed in window"
				if !p.ended || p.endAt > at {
					state = "OPEN at stall"
				}
				kind := "blocking"
				if p.chunked {
					kind = "chunked"
				}
				fmt.Fprintf(w, " disk pass: trace %d (%s) started %s, %s — %d chunk step(s), %s read\n",
					p.trace, kind, fmtMs(int64(p.startAt)), state, p.chunks, fmtBytes(p.bytes))
				openPasses++
			}
		}
		openPuncts := 0
		var oldest *punctLife
		for _, p := range lives {
			if p.orphan || p.arriveAt > at {
				continue
			}
			closedBefore := (p.emitted || p.eosClosed) && p.lastAt <= at
			if !closedBefore {
				openPuncts++
				if oldest == nil || p.arriveAt < oldest.arriveAt {
					oldest = p
				}
			}
		}
		if openPuncts > 0 {
			fmt.Fprintf(w, " unpropagated punctuations at stall: %d; oldest trace %d arrived %s (age %s)\n",
				openPuncts, oldest.trace, fmtMs(int64(oldest.arriveAt)), fmtMs(fd.AtNs-int64(oldest.arriveAt)))
		}
		var wRuns int
		var wWall, wFreed, wBytes int64
		runKeys := make([]purgeRun, 0, len(a.purgeRuns))
		for k := range a.purgeRuns {
			runKeys = append(runKeys, k)
		}
		sort.Slice(runKeys, func(i, j int) bool { return runKeys[i].at < runKeys[j].at })
		for _, k := range runKeys {
			if k.at >= winStart && k.at <= at {
				g := a.purgeRuns[k]
				wRuns++
				wWall += g.wall
				wFreed += g.n
				wBytes += g.b
			}
		}
		if wRuns > 0 {
			fmt.Fprintf(w, " purge work in window: %d run(s), %s wall, %d tuple(s) freed, %s reclaimed\n",
				wRuns, fmtMs(wWall), wFreed, fmtBytes(wBytes))
		}
		var wDefer, wDeferDisk, wDeferOwn int
		for _, d := range a.deferList {
			if d.at >= winStart && d.at <= at {
				wDefer++
				switch d.reason {
				case 1:
					wDeferDisk++
				case 2:
					wDeferOwn++
				}
			}
		}
		if wDefer > 0 {
			fmt.Fprintf(w, " deferrals in window: %d (disk pass in flight %d, own disk purge pending %d)\n",
				wDefer, wDeferDisk, wDeferOwn)
		}
		if openPasses == 0 && openPuncts == 0 && wRuns == 0 && wDefer == 0 {
			fmt.Fprintf(w, " no purge, pass or punctuation activity overlaps the stall window in this trace\n")
		}
		for _, h := range fd.hists {
			fmt.Fprintf(w, " hist %-20s count %-8d p50 %-10s p95 %-10s p99 %-10s max %s\n",
				h.Name, h.Count, fmtMs(h.P50), fmtMs(h.P95), fmtMs(h.P99), fmtMs(h.Max))
		}
	}
	return problems, nil
}
