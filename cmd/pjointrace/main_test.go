package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pjoin/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden report from the current analyzer output")

// TestGoldenReport pins the full report on a committed mini trace (two
// closed punctuation lifecycles, one unclosed, a chunked disk pass, a
// sampled tuple with two results, one foreign obs line) cross-referenced
// against a committed flight dump. Every number in the report is derived
// from the trace, so the output is bit-deterministic. Regenerate with
// `go test ./cmd/pjointrace -update` after an intentional format change.
func TestGoldenReport(t *testing.T) {
	var buf bytes.Buffer
	problems, err := analyze(&buf, []string{filepath.Join("testdata", "mini.jsonl")},
		filepath.Join("testdata", "mini_flight.jsonl"), 10)
	if err != nil {
		t.Fatal(err)
	}
	// The mini trace deliberately contains exactly one unclosed
	// lifecycle (trace 102), which -strict would flag.
	if problems != 1 {
		t.Errorf("problems = %d, want 1 (the unclosed trace 102)", problems)
	}
	golden := filepath.Join("testdata", "mini.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden (run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

// TestAnalyzeTolerantTruncatedGzip: a trace whose gzip footer was lost
// (crashed run) still analyzes in full — the deflate stream is intact,
// only the 8-byte RFC 1952 trailer is missing, and the tolerant reader
// forgives exactly that.
func TestAnalyzeTolerantTruncatedGzip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "mini.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gz := filepath.Join(dir, "mini.jsonl.gz")
	w, err := obs.CreateSink(gz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.jsonl.gz")
	if err := os.WriteFile(trunc, full[:len(full)-8], 0o644); err != nil {
		t.Fatal(err)
	}

	var want, got bytes.Buffer
	if _, err := analyze(&want, []string{filepath.Join("testdata", "mini.jsonl")}, "", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := analyze(&got, []string{trunc}, "", 10); err != nil {
		t.Fatalf("truncated-trailer trace failed to analyze: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("truncated-trailer report differs from plain report:\n--- got ---\n%s\n--- want ---\n%s",
			got.Bytes(), want.Bytes())
	}
}

// TestAnalyzeRejectsMalformedSpan: a corrupted span line is a hard
// error, not a silent skip — an analyzer that quietly drops records
// would undermine the reconciliation story.
func TestAnalyzeRejectsMalformedSpan(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"sp":"punct_arrive","id":xx}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := analyze(&buf, []string{bad}, "", 10); err == nil ||
		!strings.Contains(err.Error(), "span:") {
		t.Fatalf("analyze(malformed) err = %v, want span parse error", err)
	}
}
