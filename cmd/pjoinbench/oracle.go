package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pjoin/internal/oracle"
)

// runOracle soaks n seeds (starting at firstSeed) through the full
// differential matrix, shrinking every failure to a minimal replay spec.
// Specs are printed and, when specOut is non-empty, appended to that
// file — CI uploads it as the failure artifact. Returns an error iff
// any seed diverged.
func runOracle(n int, firstSeed uint64, specOut string, w io.Writer) error {
	start := time.Now()
	var next atomic.Int64
	var done atomic.Int64
	var mu sync.Mutex
	var specs []oracle.Spec
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := next.Add(1) - 1
				if k >= int64(n) {
					return
				}
				seed := firstSeed + uint64(k)
				ds := oracle.CheckSeed(seed)
				if len(ds) != 0 {
					spec := oracle.Shrink(seed, ds[0])
					mu.Lock()
					specs = append(specs, spec)
					fmt.Fprintf(w, "seed %d FAILED (%d divergences, first shrunk to %d arrivals):\n%s  replay spec: %s\n",
						seed, len(ds), len(spec.Scenario().Arrivals), indent(oracle.Report(ds[:min(len(ds), 4)])), spec)
					mu.Unlock()
				}
				if d := done.Add(1); d%50 == 0 {
					fmt.Fprintf(w, "oracle: %d/%d seeds checked (%s)\n", d, n, time.Since(start).Round(time.Second))
				}
			}
		}()
	}
	wg.Wait()
	fmt.Fprintf(w, "oracle: %d seeds x %d variants in %s: %d failed\n",
		n, len(oracle.Matrix()), time.Since(start).Round(time.Millisecond), len(specs))
	if len(specs) == 0 {
		return nil
	}
	if specOut != "" {
		f, err := os.Create(specOut)
		if err != nil {
			return err
		}
		for _, s := range specs {
			fmt.Fprintln(f, s)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "oracle: wrote %d replay specs to %s\n", len(specs), specOut)
	}
	return fmt.Errorf("oracle: %d of %d seeds diverged", len(specs), n)
}

// runOracleReplay re-runs one minimized spec, printing its scenario
// stats and every divergence it still reproduces. A clean replay exits
// zero (the bug is fixed); reproduced divergences exit nonzero.
func runOracleReplay(raw string, w io.Writer) error {
	spec, err := oracle.ParseSpec(raw)
	if err != nil {
		return err
	}
	sc := spec.Scenario()
	tuples, puncts := sc.Stats()
	fmt.Fprintf(w, "replaying %s\n  %d arrivals (tuples %d+%d, puncts %d+%d), buckets=%d purge=%d mem=%d\n",
		spec, len(sc.Arrivals), tuples[0], tuples[1], puncts[0], puncts[1],
		sc.NumBuckets, sc.Purge, sc.MemoryBytes)
	ds := spec.Replay()
	if len(ds) == 0 {
		fmt.Fprintln(w, "clean: the divergence no longer reproduces")
		return nil
	}
	fmt.Fprint(w, oracle.Report(ds))
	return fmt.Errorf("oracle: replay reproduced %d divergence(s)", len(ds))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				lines = append(lines, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
