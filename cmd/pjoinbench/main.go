// Command pjoinbench regenerates the paper's tables and figures: it
// runs the reproduction experiments defined in internal/bench and
// prints each figure's series as a summary table plus an ASCII chart,
// optionally exporting the raw series as CSV.
//
// Usage:
//
//	pjoinbench -list
//	pjoinbench -fig 5            # one figure (accepts "5", "fig5", "table1")
//	pjoinbench -all              # every figure and table
//	pjoinbench -fig 9 -quick     # 1/10th horizon smoke run
//	pjoinbench -fig 7 -csv out.csv
//	pjoinbench -fig scale1 -shards 1,4,16   # ShardedPJoin scaling sweep
//	pjoinbench -fig 5 -trace fig5.jsonl     # JSONL event trace of the run
//	pjoinbench -fig 5 -live 10 -csv out.csv # sample live gauges every 10ms
//	pjoinbench -bench3 BENCH_3.json         # perf summary: index micro-benches
//	                                        # + per-experiment work counters
//	pjoinbench -bench4 BENCH_4.json         # latency summary: result-latency and
//	                                        # punct-delay quantiles per punct rate
//	pjoinbench -bench5 BENCH_5.json         # incremental disk-join sweep: latency
//	                                        # quantiles per chunk budget + cache hit ratio
//	pjoinbench -bench6 BENCH_6.json         # batched dataflow sweep: memoized-probe
//	                                        # micro + pipeline throughput per batch x linger
//	pjoinbench -bench6 b6.json -batch 256 -batch-linger-ms 1  # one cell vs per-item
//	pjoinbench -bench7 BENCH_7.json         # provenance-tracing overhead sweep:
//	                                        # detached / sampled 1-in-64 / full
//	pjoinbench -fig 9 -disk-chunk-kb 64     # run any figure with incremental passes
//	pjoinbench -fig 9 -spill-cache-mb 4     # ... and/or a spill block cache
//	pjoinbench -flight-sample flight.jsonl.gz  # fault-injection flight dump
//
// Trace files with a .gz suffix are written gzip-compressed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pjoin/internal/bench"
	"pjoin/internal/metrics"
	"pjoin/internal/obs"
	"pjoin/internal/stream"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		fig    = flag.String("fig", "", "experiment to run (e.g. 5, fig5, table1)")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "shortened horizon (1/10th)")
		seed   = flag.Uint64("seed", 1, "workload seed")
		durMs  = flag.Int64("duration-ms", 0, "override virtual horizon in milliseconds")
		csv    = flag.String("csv", "", "write the raw series to this CSV file")
		shards = flag.String("shards", "", "comma-separated shard counts for the scaling experiments (e.g. 1,2,4,8)")
		trace  = flag.String("trace", "", "write a JSONL operator event trace to this file")
		liveMs = flag.Int64("live", 0, "sample live operator gauges every N virtual milliseconds (series go to -csv)")
		bench3 = flag.String("bench3", "", "write the performance summary JSON (index micro-benchmarks + per-experiment work counters) to this file")
		bench4 = flag.String("bench4", "", "write the latency summary JSON (result-latency + punct-delay quantiles per punctuation rate) to this file")
		bench5 = flag.String("bench5", "", "write the incremental disk-join sweep JSON (result-latency quantiles per chunk budget + spill-cache hit ratio) to this file")
		bench6 = flag.String("bench6", "", "write the batched-dataflow sweep JSON (memoized-probe micro + live-pipeline throughput and punct delay per batch x linger) to this file")
		bench7 = flag.String("bench7", "", "write the provenance-tracing overhead sweep JSON (detached / sampled 1-in-64 / full, tuples/s regression vs detached) to this file")
		flight = flag.String("flight-sample", "", "run the fault-injection flight-recorder scenario and write the dump to this file (.gz compresses)")

		chunkKB  = flag.Int("disk-chunk-kb", 0, "run disk passes incrementally with this per-step read budget in KiB (0 = blocking)")
		cacheMB  = flag.Int("spill-cache-mb", 0, "wrap spill stores in an LRU block cache of this many MiB (0 = no cache)")
		batchN   = flag.Int("batch", 0, "exec batch size for the live-pipeline measurements (<=1 = per-item; with -bench6, restricts the sweep to this cell)")
		lingerMs = flag.Int("batch-linger-ms", 0, "bound on how long a tuple may wait in an edge batch buffer (0 = flush every emit)")

		oracleN      = flag.Int("oracle", 0, "differential oracle soak: check this many seeds (starting at -seed) across the full config matrix")
		oracleOut    = flag.String("oracle-out", "", "oracle: write minimized replay specs of failing seeds to this file (CI failure artifact)")
		oracleReplay = flag.String("oracle-replay", "", "replay one minimized oracle spec, e.g. \"seed=42 variant=pjoin/idx/shards=2 check=puncts prefix=107 drop=3,9\"")
	)
	flag.Parse()

	if *oracleReplay != "" {
		if err := runOracleReplay(*oracleReplay, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *oracleN > 0 {
		if err := runOracle(*oracleN, *seed, *oracleOut, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *flight != "" {
		out, err := bench.RunFlight(*flight)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: flight: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("flight dump: %s fired at %v (wedged at %v, %d events, %d punctuations propagated before the fault)\nwrote %s\n",
			out.Report.Reason, out.Report.At, out.WedgedAt, out.RingEvents, out.PunctsOut, *flight)
		return
	}

	if *bench4 != "" {
		rep, err := bench.RunBench4(*seed, *quick, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench4: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*bench4)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench4: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *bench4)
		return
	}

	if *bench5 != "" {
		rep, err := bench.RunBench5(*seed, *quick, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench5: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*bench5)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench5: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *bench5)
		return
	}

	if *bench6 != "" {
		rep, err := bench.RunBench6(bench.RunConfig{
			Seed: *seed, Quick: *quick, Batch: *batchN, BatchLingerMs: *lingerMs,
		}, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench6: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*bench6)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench6: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *bench6)
		return
	}

	if *bench7 != "" {
		rep, err := bench.RunBench7(bench.RunConfig{
			Seed: *seed, Quick: *quick, Batch: *batchN,
		}, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench7: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*bench7)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench7: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *bench7)
		return
	}

	if *bench3 != "" {
		rep, err := bench.RunBench3(*seed, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench3: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*bench3)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: bench3: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *bench3)
		return
	}

	shardCounts, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	rc := bench.RunConfig{
		Seed:          *seed,
		Quick:         *quick,
		Duration:      stream.Time(*durMs) * stream.Millisecond,
		Shards:        shardCounts,
		DiskChunkKB:   *chunkKB,
		SpillCacheMB:  *cacheMB,
		Batch:         *batchN,
		BatchLingerMs: *lingerMs,
	}
	var tracer *obs.JSONL
	if *trace != "" {
		f, err := obs.CreateSink(*trace) // .gz paths get gzip compression
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tracer = obs.NewJSONL(f)
		rc.Tracer = tracer
	}

	var exps []bench.Experiment
	switch {
	case *all:
		exps = bench.Experiments()
	case *fig != "":
		e, err := bench.Get(*fig)
		if err != nil {
			// Bare numbers are a convenience for "figN".
			var err2 error
			if e, err2 = bench.Get("fig" + *fig); err2 != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		exps = []bench.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "pjoinbench: pass -list, -all or -fig N (see -help)")
		os.Exit(2)
	}

	var allSeries []metrics.Series
	for _, e := range exps {
		// A fresh sampler per experiment keeps gauge series from
		// different experiments (which reuse operator names) apart.
		if *liveMs > 0 {
			rc.Live = obs.NewLive(stream.Time(*liveMs) * stream.Millisecond)
		}
		start := time.Now()
		rep, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := rep.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall time: %.2fs)\n\n", e.ID, time.Since(start).Seconds())
		for _, s := range rep.Series {
			s.Name = rep.ID + "/" + s.Name
			allSeries = append(allSeries, s)
		}
		if rc.Live != nil {
			for _, s := range rc.Live.Series() {
				s.Name = rep.ID + "/live/" + s.Name
				allSeries = append(allSeries, s)
			}
		}
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "pjoinbench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d events to %s\n", tracer.Events(), *trace)
	}

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := metrics.WriteCSV(f, allSeries...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csv)
	}
}

// parseShards turns "1,2,4,8" into shard counts; empty input keeps the
// experiments' defaults.
func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("pjoinbench: bad -shards value %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
