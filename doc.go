// Package pjoin is a Go reproduction of "Joining Punctuated Streams"
// (Ding, Mehta, Rundensteiner, Heineman; EDBT 2004): the PJoin operator
// — a punctuation-exploiting stream equi-join — together with every
// substrate the paper builds on and the full experimental harness that
// regenerates its tables and figures.
//
// The implementation lives under internal/:
//
//   - internal/core — PJoin itself (plus the §6 extensions: sliding
//     windows and the n-ary join)
//   - internal/xjoin, internal/shj — the XJoin baseline and the naive
//     symmetric hash join (correctness oracle)
//   - internal/punct — punctuation patterns, sets and algebra
//   - internal/stream, internal/value — the data model
//   - internal/store — the hash-partitioned join state with spill-to-disk
//   - internal/event — the event-driven component framework (§3.6)
//   - internal/op, internal/exec — downstream operators and the live
//     channel executor
//   - internal/gen, internal/sim, internal/metrics, internal/bench — the
//     benchmark system, cost-model simulator and per-figure experiments
//
// The runnable entry points are cmd/pjoinbench (regenerate any figure),
// cmd/auctiond (the paper's Fig. 1 plan, live), and the programs under
// examples/. This root package holds only documentation and the
// repository-level benchmarks in bench_test.go.
package pjoin
