# Developer targets. `make check` is the tier-1 verification plus the
# race detector — the sharded parallel join (internal/parallel) is the
# first concurrent hot path, so every test run under -race is part of
# its correctness argument.

GO ?= go

.PHONY: build test vet race check bench bench-alloc bench-scaling flight-sample

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet race

# Performance summaries. BENCH_3.json: store-level probe
# micro-benchmarks plus every simulated experiment's ns/op, allocs/op
# and work counters (Examined, PurgeScanned, TuplesOut) in both the
# pre-index scan regime and the indexed regime. BENCH_4.json: the
# latency sweep — result-latency and punctuation-propagation-delay
# quantiles (p50/p95/p99/max) across punctuation inter-arrival rates in
# both regimes. BENCH_5.json: the incremental disk-join sweep —
# result-latency quantiles per chunk budget (0 = blocking baseline)
# with spill-cache hit ratios. The JSON artifacts are committed so
# regressions show up in review.
bench:
	$(GO) run ./cmd/pjoinbench -bench3 BENCH_3.json
	$(GO) run ./cmd/pjoinbench -bench4 BENCH_4.json
	$(GO) run ./cmd/pjoinbench -bench5 BENCH_5.json

# Fault-injection flight-recorder sample: wedge a join on a failing
# spill device, let the lag SLO fire, dump the last trace events +
# histogram snapshots.
flight-sample:
	$(GO) run ./cmd/pjoinbench -flight-sample flight-sample.jsonl.gz

# Hot-path allocation micro-benchmarks (probe/insert, punctuation
# matching). Run with -benchmem semantics via b.ReportAllocs().
bench-alloc:
	$(GO) test -run=NONE -bench='Probe|Insert|SetMatch|Matches' ./internal/joinbase/ ./internal/punct/

# ShardedPJoin scaling sweep (wall clock + cost-model makespan).
bench-scaling:
	$(GO) run ./cmd/pjoinbench -fig scale1
