# Developer targets. `make check` is the tier-1 verification plus the
# race detector — the sharded parallel join (internal/parallel) is the
# first concurrent hot path, so every test run under -race is part of
# its correctness argument.

GO ?= go

.PHONY: build test vet lint race check oracle traced-oracle fuzz bench bench-alloc bench-scaling flight-sample trace-sample

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static invariants: the five pjoinlint analyzers (hotpath, opcontract,
# poolsafe, spanpair, locksafe) over the whole tree. Zero unsuppressed
# diagnostics is the gate; suppressions need a //pjoin:allow with a
# justification. See DESIGN.md §14.
lint:
	$(GO) run ./cmd/pjoinlint ./...

race:
	$(GO) test -race ./...

check: build vet lint race

# Differential oracle soak: ORACLE_SEEDS seeded scenarios, each run
# through the full operator configuration matrix (PJoin/XJoin x index x
# chunked passes x shards x spill cache x fault injection) against the
# brute-force shj oracle and each other. Failures auto-shrink to a
# one-line replay spec (feed it to `pjoinbench -oracle-replay`). See
# DESIGN.md §11.
ORACLE_SEEDS ?= 200
oracle:
	ORACLE_SEEDS=$(ORACLE_SEEDS) $(GO) test ./internal/oracle/ -run TestSoak -count=1 -timeout 600s -v

# Traced-oracle soak: the same seeded scenarios run with the provenance
# span recorder attached over the mechanism-diverse traced variant
# slice, reconciling span attribution against operator metrics — Σ
# purge-span drops == Metrics.Purged, every punctuation lifecycle
# closes, every pass trace is start/io/end. See DESIGN.md §13.
traced-oracle:
	ORACLE_SEEDS=$(ORACLE_SEEDS) $(GO) test ./internal/oracle/ -run TestTracedOracle -count=1 -timeout 600s -v

# Short coverage-guided fuzz of the oracle's scenario decoder + a
# mechanism-diverse variant slice. Corpus under
# internal/oracle/testdata/fuzz; crashes land there as pinned inputs.
fuzz:
	$(GO) test ./internal/oracle/ -run='^$$' -fuzz FuzzOracle -fuzztime 60s

# Performance summaries. BENCH_3.json: store-level probe
# micro-benchmarks plus every simulated experiment's ns/op, allocs/op
# and work counters (Examined, PurgeScanned, TuplesOut) in both the
# pre-index scan regime and the indexed regime. BENCH_4.json: the
# latency sweep — result-latency and punctuation-propagation-delay
# quantiles (p50/p95/p99/max) across punctuation inter-arrival rates in
# both regimes. BENCH_5.json: the incremental disk-join sweep —
# result-latency quantiles per chunk budget (0 = blocking baseline)
# with spill-cache hit ratios. BENCH_6.json: the batched-dataflow sweep
# — per-probe speedup of the seq-guarded memoizing probe over same-key
# runs, plus wall-clock throughput and punctuation-propagation delay of
# the live pipeline per batch x linger cell. The JSON artifacts are
# committed so regressions show up in review.
bench:
	$(GO) run ./cmd/pjoinbench -bench3 BENCH_3.json
	$(GO) run ./cmd/pjoinbench -bench4 BENCH_4.json
	$(GO) run ./cmd/pjoinbench -bench5 BENCH_5.json
	$(GO) run ./cmd/pjoinbench -bench6 BENCH_6.json
	$(GO) run ./cmd/pjoinbench -bench7 BENCH_7.json

# Fault-injection flight-recorder sample: wedge a join on a failing
# spill device, let the lag SLO fire, dump the last trace events +
# histogram snapshots.
flight-sample:
	$(GO) run ./cmd/pjoinbench -flight-sample flight-sample.jsonl.gz

# End-to-end provenance sample: a traced auctiond run (every tuple
# sampled so the report has full critical paths) analyzed by
# pjointrace. -strict makes lifecycle violations (orphan spans,
# unclosed punctuation traces) fail the target, so this doubles as an
# integration check of the whole trace → analyze path.
trace-sample:
	$(GO) run ./cmd/auctiond -items 500 -trace trace-sample.jsonl.gz -trace-sample 1
	$(GO) run ./cmd/pjointrace -strict trace-sample.jsonl.gz > trace-sample.report.txt
	cat trace-sample.report.txt

# Hot-path allocation micro-benchmarks (probe/insert, punctuation
# matching). Run with -benchmem semantics via b.ReportAllocs().
bench-alloc:
	$(GO) test -run=NONE -bench='Probe|Insert|SetMatch|Matches' ./internal/joinbase/ ./internal/punct/

# ShardedPJoin scaling sweep (wall clock + cost-model makespan).
bench-scaling:
	$(GO) run ./cmd/pjoinbench -fig scale1
